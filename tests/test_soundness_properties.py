"""Property-based soundness: random programs vs the analysis chain.

The random-case space lives in :mod:`repro.fuzz.generator`; this file
drives the same ``draw_*`` functions through a Hypothesis adapter
(:class:`HypothesisDraw`), so the property tests and the ``repro fuzz``
campaign explore one shared generator by construction — there is no
second program-shape strategy to drift out of sync.

For each random (preempted, preempting) pair we verify the paper's
claims empirically:

* measured reloads after a real preemption never exceed any approach's
  line bound (Approaches 1-4 are all sound),
* the approach ordering App4 <= min(App2, App3) <= App1 holds,
* cold-cache WCET measurement dominates any warm-cache run (on LRU
  write-through, where that domination actually holds — a warm victim
  on a write-back cache can pay for the intruder's dirty lines).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ALL_APPROACHES, Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig, CacheState
from repro.fuzz.build import build_program, scenarios_for
from repro.fuzz.generator import Draw, draw_cache_spec, draw_program_spec
from repro.program import SystemLayout
from repro.vm import Machine


class HypothesisDraw(Draw):
    """The generator's three-primitive :class:`Draw` protocol backed by
    Hypothesis strategies, so failures shrink through Hypothesis while the
    case space stays identical to the campaign's :class:`RandomDraw`."""

    def __init__(self, draw):
        self._draw = draw

    def integer(self, low: int, high: int) -> int:
        return self._draw(st.integers(min_value=low, max_value=high))

    def choice(self, options):
        return self._draw(st.sampled_from(list(options)))

    def boolean(self) -> bool:
        return self._draw(st.booleans())


def _config_from(cache_spec) -> CacheConfig:
    return CacheConfig(
        num_sets=cache_spec.num_sets,
        ways=cache_spec.ways,
        line_size=cache_spec.line_size,
        miss_penalty=cache_spec.miss_penalty,
        policy=cache_spec.policy,
        write_back=cache_spec.write_back,
    )


@st.composite
def task_pairs(draw, lru_write_through=False):
    """A shared-generator cache plus a placed (low, high) program pair."""
    d = HypothesisDraw(draw)
    cache_spec = draw_cache_spec(d)
    if lru_write_through:
        cache_spec = replace(cache_spec, policy="lru", write_back=False)
    config = _config_from(cache_spec)
    layout = SystemLayout()
    placed = []
    for name in ("low", "high"):
        program, inputs = build_program(draw_program_spec(d), name)
        inputs["flag"] = [int(d.boolean())]
        placed.append((layout.place(program), inputs))
    return config, placed[0], placed[1]


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _run_to_step(layout, inputs, cache, step_limit):
    machine = Machine(layout=layout, cache=cache)
    for array, values in inputs.items():
        machine.write_array(array, values)
    steps = 0
    while not machine.halted and steps < step_limit:
        machine.step()
        steps += 1
    return machine


def _measure_reloads(machine, cache, evicted):
    reloaded: set[int] = set()
    while not machine.halted:
        before = cache.resident_blocks()
        machine.step()
        reloaded |= (cache.resident_blocks() - before) & evicted
    return len(reloaded)


@given(pair=task_pairs(), preempt_step=st.integers(min_value=1, max_value=400))
@_SETTINGS
def test_measured_reloads_bounded_by_every_approach(pair, preempt_step):
    config, (low_layout, low_inputs), (high_layout, high_inputs) = pair
    low_art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    high_art = analyze_task(high_layout, scenarios_for(high_inputs), config)
    crpd = CRPDAnalyzer({"low": low_art, "high": high_art})

    cache = CacheState(config)
    machine = _run_to_step(low_layout, low_inputs, cache, preempt_step)
    if machine.halted:
        return  # preemption point beyond the program's end; trivially fine

    resident_before = cache.resident_blocks() & low_art.footprint
    intruder = Machine(layout=high_layout, cache=cache)
    for array, values in high_inputs.items():
        intruder.write_array(array, values)
    intruder.run()
    evicted = resident_before - cache.resident_blocks()
    measured = _measure_reloads(machine, cache, evicted)

    lines = {a: crpd.lines_reloaded("low", "high", a) for a in ALL_APPROACHES}
    for approach, bound in lines.items():
        assert measured <= bound, (
            f"approach {approach} bound {bound} violated: {measured} reloads"
        )
    # Approach ordering (Sections V-VI).
    assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
    assert lines[Approach.COMBINED] <= lines[Approach.LEE]
    assert lines[Approach.INTERTASK] <= lines[Approach.BUSQUETS]


@given(pair=task_pairs())
@_SETTINGS
def test_per_point_mode_sound_and_dominates_def4(pair):
    """The per_point Approach-4 variant is >= the Definition-4 value (the
    joint maximisation covers the Definition-4 point) and bounds measured
    reloads from a real mid-run preemption."""
    config, (low_layout, low_inputs), (high_layout, high_inputs) = pair
    low_art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    high_art = analyze_task(high_layout, scenarios_for(high_inputs), config)
    paper = CRPDAnalyzer({"low": low_art, "high": high_art}, mumbs_mode="paper")
    tight = CRPDAnalyzer({"low": low_art, "high": high_art}, mumbs_mode="per_point")
    paper_lines = paper.lines_reloaded("low", "high", Approach.COMBINED)
    tight_lines = tight.lines_reloaded("low", "high", Approach.COMBINED)
    assert tight_lines >= paper_lines

    # Empirical check against a mid-run full eviction by the real intruder.
    cache = CacheState(config)
    machine = _run_to_step(low_layout, low_inputs, cache, 60)
    if machine.halted:
        return
    resident_before = cache.resident_blocks() & low_art.footprint
    intruder = Machine(layout=high_layout, cache=cache)
    for array, values in high_inputs.items():
        intruder.write_array(array, values)
    intruder.run()
    evicted = resident_before - cache.resident_blocks()
    machine_reloads = _measure_reloads(machine, cache, evicted)
    assert machine_reloads <= tight_lines


@given(pair=task_pairs())
@_SETTINGS
def test_static_bound_dominates_measured_wcet(pair):
    """The all-miss structural bound dominates the measured WCET for
    arbitrary generated programs — including write-back caches, where
    every miss may also pay a dirty-line writeback (the fuzz campaign's
    first engine catch; see tests/test_fuzz_regressions.py)."""
    from repro.analysis.wcet import static_wcet_bound

    config, (low_layout, low_inputs), _ = pair
    art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    assert static_wcet_bound(low_layout, config) >= art.wcet.cycles


@given(pair=task_pairs())
@_SETTINGS
def test_path_footprints_cover_observed_footprint(pair):
    """Every observed memory block lies on at least one feasible path's
    footprint (each executed node belongs to some path), and each path
    footprint is a subset of the total footprint."""
    from repro.program.paths import path_footprint

    config, (low_layout, low_inputs), _ = pair
    art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    per_node = art.per_node_blocks()
    footprints = [
        path_footprint(profile, per_node) for profile in art.path_profiles
    ]
    union: set[int] = set()
    for fp in footprints:
        assert fp <= art.footprint
        union |= fp
    assert union == set(art.footprint)


@given(pair=task_pairs())
@_SETTINGS
def test_lee_bound_dominates_any_single_point(pair):
    """Approach 3's MUMBS-based bound dominates every individual
    execution point's reload bound (it is their maximum)."""
    config, (low_layout, low_inputs), _ = pair
    art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    lee = art.useful.lee_reload_bound()
    for point in art.useful.points:
        assert point.reload_bound() <= lee


@given(pair=task_pairs(lru_write_through=True))
@_SETTINGS
def test_cold_wcet_dominates_warm_runs(pair):
    """The WCET measured from a cold cache bounds any warm-start run of
    the same scenario.  This holds on LRU write-through only: LRU has no
    cold-start anomalies, but under write-back the warm run can pay
    writebacks for dirty lines the intruder left behind."""
    config, (low_layout, low_inputs), (high_layout, high_inputs) = pair
    low_art = analyze_task(low_layout, scenarios_for(low_inputs), config)
    # Warm the cache with the other task, then run the measured scenario.
    cache = CacheState(config)
    intruder = Machine(layout=high_layout, cache=cache)
    for array, values in high_inputs.items():
        intruder.write_array(array, values)
    intruder.run()
    worst = low_art.wcet.worst_scenario
    warm = Machine(layout=low_layout, cache=cache)
    for array, values in scenarios_for(low_inputs)[worst].items():
        warm.write_array(array, values)
    warm.run()
    assert warm.cycles <= low_art.wcet.cycles
