"""Unit tests for program and system memory layout."""

import pytest

from repro.program import (
    INSTRUCTION_SIZE,
    LayoutError,
    ProgramBuilder,
    ProgramLayout,
    SystemLayout,
)


def small_program(name="p", words=8):
    b = ProgramBuilder(name)
    arr = b.array("a", words=words)
    arr2 = b.array("b", words=words)
    b.load("x", arr, index=0)
    b.store("x", arr2, index=0)
    return b.build()


class TestProgramLayout:
    def test_code_addresses_sequential(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0x1000, data_base=0x2000)
        addresses = layout.code_addresses()
        assert addresses[0] == 0x1000
        assert all(
            b - a == INSTRUCTION_SIZE for a, b in zip(addresses, addresses[1:])
        )
        assert len(addresses) == program.cfg.total_instructions

    def test_instruction_address_includes_terminator(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        entry = program.cfg.block(program.cfg.entry)
        term_addr = layout.instruction_address(
            program.cfg.entry, len(entry.instructions)
        )
        assert term_addr == len(entry.instructions) * INSTRUCTION_SIZE

    def test_instruction_address_out_of_range(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="out of range"):
            layout.instruction_address(program.cfg.entry, 999)

    def test_symbol_addresses_aligned(self):
        program = small_program()
        layout = ProgramLayout(
            program=program, code_base=0, data_base=0x1001, data_alignment=16
        )
        assert layout.symbol_base("a") % 16 == 0
        assert layout.symbol_base("b") % 16 == 0
        assert layout.symbol_base("b") >= layout.symbol_base("a") + 8 * 4

    def test_element_address(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        assert layout.element_address("a", 3) == layout.symbol_base("a") + 12

    def test_element_out_of_range(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="out of range"):
            layout.element_address("a", 8)

    def test_unknown_symbol(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="no symbol"):
            layout.symbol_base("ghost")

    def test_unknown_block(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="no block"):
            layout.block_start("ghost")

    def test_negative_base_rejected(self):
        program = small_program()
        with pytest.raises(LayoutError, match="non-negative"):
            ProgramLayout(program=program, code_base=-4, data_base=0x1000)

    def test_overlapping_code_and_data_rejected(self):
        program = small_program()
        with pytest.raises(LayoutError, match="overlap"):
            ProgramLayout(program=program, code_base=0, data_base=8)

    def test_data_addresses_cover_all_elements(self):
        program = small_program(words=5)
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        addresses = layout.data_addresses()
        assert len(addresses) == 10  # two arrays of 5 words
        assert layout.element_address("a", 0) in addresses
        assert layout.element_address("b", 4) in addresses


class TestSystemLayout:
    def test_sequential_placement_disjoint(self):
        system = SystemLayout()
        l1 = system.place(small_program("p1"))
        l2 = system.place(small_program("p2"))
        assert l2.code_base >= max(l1.code_end, l1.data_end)

    def test_duplicate_program_rejected(self):
        system = SystemLayout()
        system.place(small_program("p1"))
        with pytest.raises(LayoutError, match="already placed"):
            system.place(small_program("p1"))

    def test_layout_of(self):
        system = SystemLayout()
        placed = system.place(small_program("p1"))
        assert system.layout_of("p1") is placed
        with pytest.raises(LayoutError, match="not placed"):
            system.layout_of("ghost")

    def test_stride_positions(self):
        system = SystemLayout(base_address=0x10000, stride=0x2000)
        l1 = system.place(small_program("p1"))
        l2 = system.place(small_program("p2"))
        assert l1.code_base == 0x10000
        assert l2.code_base == 0x12000

    def test_stride_too_small_rejected(self):
        system = SystemLayout(stride=0x40)  # smaller than any program
        system.place(small_program("p1"))
        with pytest.raises(LayoutError, match="stride"):
            system.place(small_program("p2"))

    def test_all_regions_physically_disjoint(self):
        """No byte belongs to two tasks, sequential or strided."""
        for system in (SystemLayout(), SystemLayout(stride=0x2000)):
            layouts = [system.place(small_program(f"p{i}")) for i in range(3)]
            regions = []
            for layout in layouts:
                regions.append((layout.code_base, layout.code_end))
                regions.append((layout.data_base, layout.data_end))
            regions.sort()
            for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
                assert e1 <= s2, f"overlap: [{s1:#x},{e1:#x}) vs [{s2:#x},{e2:#x})"


def codeonly_program(name="c"):
    """A program with code but no arrays — its data region is empty."""
    b = ProgramBuilder(name)
    b.const("x", 1)
    b.add("y", "x", "x")
    return b.build()


class TestEmptyDataRegion:
    """Regression: an empty data region must never count as overlapping."""

    def test_data_base_inside_code_region_is_fine(self):
        program = codeonly_program()
        code_bytes = program.cfg.total_instructions * INSTRUCTION_SIZE
        # The empty [data_base, data_base) span sits strictly inside the
        # code region — the seed's half-open check called this overlap.
        layout = ProgramLayout(
            program=program, code_base=0x1000, data_base=0x1000 + code_bytes // 2
        )
        assert layout.data_end == layout.data_base

    def test_data_base_at_code_base_is_fine(self):
        program = codeonly_program()
        ProgramLayout(program=program, code_base=0x1000, data_base=0x1000)

    def test_system_placement_of_codeonly_programs(self):
        system = SystemLayout()
        layouts = [system.place(codeonly_program(f"c{i}")) for i in range(3)]
        assert all(l.data_end == l.data_base for l in layouts)

    def test_nonempty_overlap_still_rejected(self):
        program = small_program()
        with pytest.raises(LayoutError, match="overlap"):
            ProgramLayout(program=program, code_base=0x1000, data_base=0x1004)


class TestSymbolOverrides:
    def test_override_moves_one_array_out_of_the_pack(self):
        program = small_program()
        layout = ProgramLayout(
            program=program,
            code_base=0x1000,
            data_base=0x2000,
            symbol_overrides={"b": 0x4000},
        )
        assert layout.symbol_base("b") == 0x4000
        assert layout.symbol_base("a") == 0x2000
        # The packed data region no longer includes the pinned array.
        assert layout.data_end == 0x2000 + 8 * 4

    def test_unknown_symbol_rejected(self):
        with pytest.raises(LayoutError, match="unknown array"):
            ProgramLayout(
                program=small_program(),
                code_base=0x1000,
                data_base=0x2000,
                symbol_overrides={"ghost": 0x4000},
            )

    def test_negative_override_rejected(self):
        with pytest.raises(LayoutError, match="negative"):
            ProgramLayout(
                program=small_program(),
                code_base=0x1000,
                data_base=0x2000,
                symbol_overrides={"b": -8},
            )

    def test_override_colliding_with_code_rejected(self):
        with pytest.raises(LayoutError, match="'b'"):
            ProgramLayout(
                program=small_program(),
                code_base=0x1000,
                data_base=0x2000,
                symbol_overrides={"b": 0x1000},
            )

    def test_place_at_names_both_tasks_on_collision(self):
        from repro.program import SystemLayout

        system = SystemLayout()
        system.place_at(small_program("p1"), code_base=0x1000, data_base=0x2000)
        with pytest.raises(LayoutError) as exc:
            system.place_at(
                small_program("p2"), code_base=0x1000, data_base=0x3000
            )
        message = str(exc.value)
        assert "p1" in message and "p2" in message


class TestLayoutAssignment:
    def make_layouts(self):
        from repro.program import SystemLayout

        system = SystemLayout()
        programs = {f"p{i}": small_program(f"p{i}") for i in range(2)}
        return programs, {
            name: system.place(program) for name, program in programs.items()
        }

    def test_round_trips_through_dict(self):
        from repro.program import LayoutAssignment, assignment_of

        _, layouts = self.make_layouts()
        assignment = assignment_of(layouts)
        clone = LayoutAssignment.from_dict(assignment.to_dict())
        assert clone == assignment

    def test_apply_assignment_reproduces_the_layouts(self):
        from repro.program import apply_assignment, assignment_of

        programs, layouts = self.make_layouts()
        rebuilt = apply_assignment(programs, assignment_of(layouts))
        for name, layout in layouts.items():
            assert rebuilt[name].code_base == layout.code_base
            assert rebuilt[name].data_base == layout.data_base
            assert rebuilt[name].intervals() == layout.intervals()

    def test_replace_swaps_one_placement(self):
        from dataclasses import replace

        from repro.program import assignment_of

        _, layouts = self.make_layouts()
        assignment = assignment_of(layouts)
        moved = replace(assignment.placement("p1"), code_base=0x9000)
        updated = assignment.replace(moved)
        assert updated.placement("p1").code_base == 0x9000
        assert updated.placement("p0") == assignment.placement("p0")
        assert assignment.placement("p1").code_base != 0x9000  # frozen

    def test_apply_assignment_rejects_overlap(self):
        from dataclasses import replace

        from repro.program import apply_assignment, assignment_of

        programs, layouts = self.make_layouts()
        assignment = assignment_of(layouts)
        collided = assignment.replace(
            replace(
                assignment.placement("p1"),
                code_base=assignment.placement("p0").code_base,
            )
        )
        with pytest.raises(LayoutError):
            apply_assignment(programs, collided)

    def test_symbols_survive_the_round_trip(self):
        from repro.program import LayoutAssignment, TaskPlacement

        placement = TaskPlacement(
            name="t", code_base=0x1000, data_base=0x2000,
            symbols=(("a", 0x4000),),
        )
        assignment = LayoutAssignment(tasks=(placement,))
        clone = LayoutAssignment.from_dict(assignment.to_dict())
        assert clone.placement("t").symbol_overrides() == {"a": 0x4000}
