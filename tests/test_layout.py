"""Unit tests for program and system memory layout."""

import pytest

from repro.program import (
    INSTRUCTION_SIZE,
    LayoutError,
    ProgramBuilder,
    ProgramLayout,
    SystemLayout,
)


def small_program(name="p", words=8):
    b = ProgramBuilder(name)
    arr = b.array("a", words=words)
    arr2 = b.array("b", words=words)
    b.load("x", arr, index=0)
    b.store("x", arr2, index=0)
    return b.build()


class TestProgramLayout:
    def test_code_addresses_sequential(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0x1000, data_base=0x2000)
        addresses = layout.code_addresses()
        assert addresses[0] == 0x1000
        assert all(
            b - a == INSTRUCTION_SIZE for a, b in zip(addresses, addresses[1:])
        )
        assert len(addresses) == program.cfg.total_instructions

    def test_instruction_address_includes_terminator(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        entry = program.cfg.block(program.cfg.entry)
        term_addr = layout.instruction_address(
            program.cfg.entry, len(entry.instructions)
        )
        assert term_addr == len(entry.instructions) * INSTRUCTION_SIZE

    def test_instruction_address_out_of_range(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="out of range"):
            layout.instruction_address(program.cfg.entry, 999)

    def test_symbol_addresses_aligned(self):
        program = small_program()
        layout = ProgramLayout(
            program=program, code_base=0, data_base=0x1001, data_alignment=16
        )
        assert layout.symbol_base("a") % 16 == 0
        assert layout.symbol_base("b") % 16 == 0
        assert layout.symbol_base("b") >= layout.symbol_base("a") + 8 * 4

    def test_element_address(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        assert layout.element_address("a", 3) == layout.symbol_base("a") + 12

    def test_element_out_of_range(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="out of range"):
            layout.element_address("a", 8)

    def test_unknown_symbol(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="no symbol"):
            layout.symbol_base("ghost")

    def test_unknown_block(self):
        program = small_program()
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        with pytest.raises(LayoutError, match="no block"):
            layout.block_start("ghost")

    def test_negative_base_rejected(self):
        program = small_program()
        with pytest.raises(LayoutError, match="non-negative"):
            ProgramLayout(program=program, code_base=-4, data_base=0x1000)

    def test_overlapping_code_and_data_rejected(self):
        program = small_program()
        with pytest.raises(LayoutError, match="overlap"):
            ProgramLayout(program=program, code_base=0, data_base=8)

    def test_data_addresses_cover_all_elements(self):
        program = small_program(words=5)
        layout = ProgramLayout(program=program, code_base=0, data_base=0x1000)
        addresses = layout.data_addresses()
        assert len(addresses) == 10  # two arrays of 5 words
        assert layout.element_address("a", 0) in addresses
        assert layout.element_address("b", 4) in addresses


class TestSystemLayout:
    def test_sequential_placement_disjoint(self):
        system = SystemLayout()
        l1 = system.place(small_program("p1"))
        l2 = system.place(small_program("p2"))
        assert l2.code_base >= max(l1.code_end, l1.data_end)

    def test_duplicate_program_rejected(self):
        system = SystemLayout()
        system.place(small_program("p1"))
        with pytest.raises(LayoutError, match="already placed"):
            system.place(small_program("p1"))

    def test_layout_of(self):
        system = SystemLayout()
        placed = system.place(small_program("p1"))
        assert system.layout_of("p1") is placed
        with pytest.raises(LayoutError, match="not placed"):
            system.layout_of("ghost")

    def test_stride_positions(self):
        system = SystemLayout(base_address=0x10000, stride=0x2000)
        l1 = system.place(small_program("p1"))
        l2 = system.place(small_program("p2"))
        assert l1.code_base == 0x10000
        assert l2.code_base == 0x12000

    def test_stride_too_small_rejected(self):
        system = SystemLayout(stride=0x40)  # smaller than any program
        system.place(small_program("p1"))
        with pytest.raises(LayoutError, match="stride"):
            system.place(small_program("p2"))

    def test_all_regions_physically_disjoint(self):
        """No byte belongs to two tasks, sequential or strided."""
        for system in (SystemLayout(), SystemLayout(stride=0x2000)):
            layouts = [system.place(small_program(f"p{i}")) for i in range(3)]
            regions = []
            for layout in layouts:
                regions.append((layout.code_base, layout.code_end))
                regions.append((layout.data_base, layout.data_end))
            regions.sort()
            for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
                assert e1 <= s2, f"overlap: [{s1:#x},{e1:#x}) vs [{s2:#x},{e2:#x})"
