"""Shrinker unit tests against planted bugs with known ground truth.

The planted oracles in :mod:`repro.fuzz.shrink` "fail" on a structural
feature (a loop, a store) rather than a real bound violation, so the
minimal failing system is known a priori: one task, one trivial program
exhibiting just that feature, everything else stripped.  That gives the
three properties the satellite task demands sharp, assertable forms:

* **termination** — the strictly decreasing weight bounds the rounds;
* **determinism** — two fresh runs on the same input produce the same
  minimized spec, round count and attempt count;
* **minimality** — the acceptance bar: a planted engine bug shrinks to
  <= 6 CFG nodes.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.build import cfg_node_count
from repro.fuzz.generator import case_from_seed
from repro.fuzz.shrink import (
    planted_predicate,
    repro_script,
    pytest_stub,
    shrink_case,
    write_artifacts,
)
from repro.fuzz.spec import SystemSpec, spec_weight


def _shrink_planted(name: str, seed: int = 4, index: int = 0):
    spec = case_from_seed(seed, index)
    predicate = planted_predicate(name)
    assert predicate(spec), "seed must exhibit the planted feature"
    return spec, shrink_case(spec, predicate)


class TestPlantedShrinks:
    @pytest.mark.parametrize("planted", ["loop", "store"])
    def test_minimal_and_terminating(self, planted):
        spec, result = _shrink_planted(planted)
        assert result.weight_after < result.weight_before
        # Termination's witness: every accepted round strictly decreased
        # the integer weight, so rounds can never exceed the start weight.
        assert result.rounds <= result.weight_before
        # The acceptance bar: a planted bug reduces to a near-trivial
        # system (the ISSUE's threshold is <= 6 CFG nodes).
        assert cfg_node_count(result.spec) <= 6
        assert len(result.spec.tasks) == 1
        # The shrunk spec still exhibits the planted feature, and the
        # original is untouched (specs are immutable).
        assert planted_predicate(planted)(result.spec)
        assert spec_weight(spec) == result.weight_before

    @pytest.mark.parametrize("planted", ["loop", "store"])
    def test_deterministic_across_runs(self, planted):
        _, first = _shrink_planted(planted)
        _, second = _shrink_planted(planted)
        assert first.spec == second.spec
        assert first.spec.to_json() == second.spec.to_json()
        assert (first.rounds, first.attempts) == (second.rounds, second.attempts)


class TestShrinkContract:
    def test_rejects_non_failing_input(self):
        spec = case_from_seed(4, 0)
        with pytest.raises(ValueError, match="does not hold"):
            shrink_case(spec, lambda s: False)

    def test_crashing_candidates_never_count_as_the_bug(self):
        """ddmin's 'unresolved' rule: a candidate that makes the predicate
        raise is skipped, and the shrink still reaches a valid minimum."""
        spec = case_from_seed(4, 0)
        loop = planted_predicate("loop")

        def touchy(candidate: SystemSpec) -> bool:
            if candidate.cache.num_sets < spec.cache.num_sets:
                raise RuntimeError("injected validity failure")
            return loop(candidate)

        result = shrink_case(spec, touchy)
        # Cache shrinks were poisoned, so the geometry must survive...
        assert result.spec.cache.num_sets == spec.cache.num_sets
        # ...while everything else still minimized.
        assert result.weight_after < result.weight_before
        assert loop(result.spec)

    def test_result_weight_matches_spec(self):
        _, result = _shrink_planted("loop")
        assert spec_weight(result.spec) == result.weight_after


class TestArtifacts:
    def test_emitted_files_round_trip_and_run(self, tmp_path):
        _, result = _shrink_planted("loop")
        paths = write_artifacts(tmp_path, result, seed=4, index=0,
                                oracle_names=None)
        assert set(paths) == {"spec", "script", "pytest"}
        reloaded = SystemSpec.from_json(
            json.loads((tmp_path / "minimized_seed4_case0.json").read_text())
        )
        assert reloaded == result.spec
        # Both generated sources must at least be valid Python.
        compile((tmp_path / paths["script"].split("/")[-1]).read_text(),
                paths["script"], "exec")
        compile((tmp_path / paths["pytest"].split("/")[-1]).read_text(),
                paths["pytest"], "exec")

    def test_scripts_embed_the_minimized_spec(self):
        _, result = _shrink_planted("store")
        script = repro_script(result.spec, 4, 0, None)
        stub = pytest_stub(result.spec, 4, 0, None)
        for text in (script, stub):
            payload = text.split('r"""', 1)[1].split('"""', 1)[0]
            assert SystemSpec.from_json(json.loads(payload)) == result.spec
