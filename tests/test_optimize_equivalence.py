"""Fuzz-bank oracle for the optimizer's incremental evaluations.

Every layout the optimizer visits is scored through a warm
:class:`~repro.analysis.whatif.WhatIfSession` jump (or the warm-pool
batch engine during the generation phase).  This suite replays each
visited assignment through a *cold* :func:`~repro.batch.analyze_batch`
call — fresh store, no session state — and asserts the evaluation
payloads are byte-identical.  That is the soundness contract that lets
the search trust its cheap evaluations.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.store import ArtifactStore
from repro.analysis.whatif import WhatIfSession
from repro.batch import SweepPoint, analyze_batch
from repro.optimize import optimize, payload_of_point
from repro.program.layout import LayoutAssignment


@pytest.fixture(scope="module")
def run():
    """One seeded exp1 run exercising every move kind and both phases."""
    store = ArtifactStore(directory=None, memory_slots=8192)
    session = WhatIfSession("exp1", store=store)
    try:
        config = session._config
    finally:
        session.close()
    outcome = optimize(
        "exp1",
        seed=11,
        budget_evals=10,
        generation=4,
        patience=4,
        restarts=2,
        cache_budgets=[config],
        store=store,
    )
    return outcome, config


def visited(outcome):
    """Unique (assignment, payload) pairs from the move log, as dicts."""
    unique = {}
    for entry in outcome.move_log:
        if not entry["valid"]:
            continue
        key = json.dumps(entry["assignment"], sort_keys=True)
        unique.setdefault(key, entry)
    return list(unique.values())


class TestColdRecomputationOracle:
    def test_the_run_visited_enough_layouts(self, run):
        outcome, _ = run
        entries = visited(outcome)
        assert len(entries) >= 4  # baseline + generation + local moves
        kinds = {entry["kind"] for entry in outcome.move_log}
        assert "baseline" in kinds and "generation" in kinds

    def test_every_visited_layout_round_trips_cold(self, run):
        outcome, config = run
        entries = visited(outcome)
        points = [
            SweepPoint(
                experiment="exp1",
                cache=config,
                layout=LayoutAssignment.from_dict(entry["assignment"]),
            )
            for entry in entries
        ]
        # Cold: no shared store, no warm pool, fresh everything.
        batch = analyze_batch(points, path_engine="dense")
        for entry, point_result in zip(entries, batch.results):
            warm = json.dumps(entry["eval"], sort_keys=True)
            cold = json.dumps(payload_of_point(point_result), sort_keys=True)
            assert warm == cold, f"divergence at move {entry['move']!r}"

    def test_baseline_assignment_matches_the_default_placement(self, run):
        outcome, config = run
        baseline = outcome.move_log[0]
        assert baseline["kind"] == "baseline"
        plain = analyze_batch(
            [SweepPoint(experiment="exp1", cache=config)],
            path_engine="dense",
        ).results[0]
        assert json.dumps(baseline["eval"], sort_keys=True) == json.dumps(
            payload_of_point(plain), sort_keys=True
        )
