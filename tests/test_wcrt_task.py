"""Unit tests for the task model (TaskSpec / TaskSystem)."""

import pytest

from repro.wcrt import TaskSpec, TaskSystem


class TestTaskSpec:
    def test_valid_task(self):
        task = TaskSpec(name="t", wcet=100, period=1000, priority=1)
        assert task.effective_deadline == 1000
        assert task.utilization == 0.1

    def test_explicit_deadline(self):
        task = TaskSpec(name="t", wcet=100, period=1000, priority=1, deadline=500)
        assert task.effective_deadline == 500

    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ValueError, match="wcet"):
            TaskSpec(name="t", wcet=0, period=100, priority=1)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period"):
            TaskSpec(name="t", wcet=1, period=0, priority=1)

    def test_rejects_wcet_beyond_deadline(self):
        with pytest.raises(ValueError, match="unschedulable"):
            TaskSpec(name="t", wcet=200, period=100, priority=1)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            TaskSpec(name="t", wcet=1, period=100, priority=1, deadline=0)


class TestTaskSystem:
    def make_system(self):
        return TaskSystem(
            tasks=[
                TaskSpec(name="low", wcet=300, period=3000, priority=4),
                TaskSpec(name="high", wcet=100, period=1000, priority=2),
                TaskSpec(name="mid", wcet=200, period=2000, priority=3),
            ]
        )

    def test_sorted_by_priority(self):
        system = self.make_system()
        assert system.names() == ["high", "mid", "low"]

    def test_higher_priority(self):
        system = self.make_system()
        assert [t.name for t in system.higher_priority("low")] == ["high", "mid"]
        assert system.higher_priority("high") == []

    def test_task_lookup(self):
        system = self.make_system()
        assert system.task("mid").wcet == 200
        with pytest.raises(KeyError):
            system.task("ghost")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TaskSystem(tasks=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate task names"):
            TaskSystem(
                tasks=[
                    TaskSpec(name="t", wcet=1, period=10, priority=1),
                    TaskSpec(name="t", wcet=1, period=10, priority=2),
                ]
            )

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(ValueError, match="duplicate priorities"):
            TaskSystem(
                tasks=[
                    TaskSpec(name="a", wcet=1, period=10, priority=1),
                    TaskSpec(name="b", wcet=1, period=10, priority=1),
                ]
            )

    def test_utilization(self):
        system = self.make_system()
        assert system.utilization == pytest.approx(0.1 + 0.1 + 0.1)

    def test_hyperperiod(self):
        system = self.make_system()
        assert system.hyperperiod == 6000

    def test_rate_monotonic_consistency(self):
        assert self.make_system().rate_monotonic_consistent()
        inverted = TaskSystem(
            tasks=[
                TaskSpec(name="a", wcet=1, period=100, priority=2),
                TaskSpec(name="b", wcet=1, period=10, priority=3),
            ]
        )
        assert not inverted.rate_monotonic_consistent()

    def test_experiment_systems_are_rma(self, experiment1_context, experiment2_context):
        """The paper uses RMA: shorter period -> higher priority (Table I)."""
        assert experiment1_context.system.rate_monotonic_consistent()
        assert experiment2_context.system.rate_monotonic_consistent()
        assert experiment1_context.system.utilization < 1.0
        assert experiment2_context.system.utilization < 1.0
