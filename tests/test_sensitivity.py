"""Tests for the schedulability sensitivity analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Approach
from repro.analysis.sensitivity import (
    PenaltyModel,
    breakdown_miss_penalty,
    critical_scaling_factor,
)
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt, zero_cpre


def light_system():
    return TaskSystem(
        tasks=[
            TaskSpec(name="high", wcet=10, period=100, priority=1),
            TaskSpec(name="low", wcet=20, period=400, priority=2),
        ]
    )


class TestCriticalScaling:
    def test_light_system_has_headroom(self):
        factor = critical_scaling_factor(light_system(), zero_cpre)
        assert factor > 1.5

    def test_scaled_system_actually_schedulable_at_factor(self):
        system = light_system()
        factor = critical_scaling_factor(system, zero_cpre)
        scaled = TaskSystem(
            tasks=[
                TaskSpec(
                    name=t.name,
                    wcet=max(1, int(t.wcet * factor * 0.99)),
                    period=t.period,
                    priority=t.priority,
                )
                for t in system.tasks
            ]
        )
        assert compute_system_wcrt(scaled).schedulable

    def test_unschedulable_returns_zero_or_tiny(self):
        system = TaskSystem(
            tasks=[
                TaskSpec(name="hog", wcet=90, period=100, priority=1),
                TaskSpec(name="victim", wcet=50, period=200, priority=2),
            ]
        )
        factor = critical_scaling_factor(system, zero_cpre)
        assert factor < 1.0

    def test_crpd_reduces_headroom(self):
        without = critical_scaling_factor(light_system(), zero_cpre)
        with_crpd = critical_scaling_factor(
            light_system(), lambda low, high: 30, context_switch=5
        )
        assert with_crpd < without

    def test_upper_cap(self):
        tiny = TaskSystem(
            tasks=[TaskSpec(name="t", wcet=1, period=10**6, priority=1)]
        )
        assert critical_scaling_factor(tiny, zero_cpre, upper=4.0) == 4.0

    @given(cpre_cost=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30)
    def test_monotone_in_cpre(self, cpre_cost):
        base = critical_scaling_factor(light_system(), zero_cpre)
        worse = critical_scaling_factor(
            light_system(), lambda l, h: cpre_cost
        )
        assert worse <= base + 1e-6


class TestPenaltyModel:
    def test_calibration_roundtrip(self):
        model = PenaltyModel.calibrate(
            wcets_low={"t": 1000}, wcets_high={"t": 1400},
            penalty_low=10, penalty_high=30,
        )
        assert model.misses["t"] == 20
        assert model.base["t"] == 800
        assert model.wcet("t", 0) == 800
        assert model.wcet("t", 40) == 1600

    def test_nonlinear_rejected(self):
        with pytest.raises(ValueError, match="not linear"):
            PenaltyModel.calibrate(
                wcets_low={"t": 1000}, wcets_high={"t": 1401},
                penalty_low=10, penalty_high=30,
            )

    def test_equal_penalties_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            PenaltyModel.calibrate({"t": 1}, {"t": 1}, 10, 10)

    def test_model_matches_vm_exactly(self, experiment1_context):
        """The VM's WCET really is base + misses*penalty: predict Cmiss=40
        from measurements at 20 and 30, then verify by re-measurement."""
        from repro.experiments import EXPERIMENT_I_SPEC, build_context

        ctx20 = experiment1_context
        ctx30 = build_context(EXPERIMENT_I_SPEC, miss_penalty=30)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx20.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx30.artifacts.items()},
            20, 30,
        )
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        for name, artifacts in ctx40.artifacts.items():
            assert model.wcet(name, 40) == artifacts.wcet.cycles


class TestBreakdownPenalty:
    def test_tighter_approach_higher_breakdown(self, experiment1_context):
        from repro.experiments import EXPERIMENT_I_SPEC, build_context

        ctx = experiment1_context
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx40.artifacts.items()},
            20, 40,
        )
        breakdowns = {}
        for approach in (Approach.BUSQUETS, Approach.LEE, Approach.COMBINED):
            breakdowns[approach] = breakdown_miss_penalty(
                ctx.system, ctx.crpd, model, approach, context_switch=1049
            )
        assert breakdowns[Approach.COMBINED] is not None
        assert breakdowns[Approach.COMBINED] >= breakdowns[Approach.BUSQUETS]
        assert breakdowns[Approach.COMBINED] >= breakdowns[Approach.LEE]
        # The combined analysis buys real headroom on this task set.
        assert breakdowns[Approach.COMBINED] > breakdowns[Approach.BUSQUETS]

    def test_schedulable_at_breakdown_not_above(self, experiment1_context):
        from repro.experiments import EXPERIMENT_I_SPEC, build_context
        from repro.wcrt import TaskSpec, TaskSystem

        ctx = experiment1_context
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx40.artifacts.items()},
            20, 40,
        )
        approach = Approach.COMBINED
        breakdown = breakdown_miss_penalty(
            ctx.system, ctx.crpd, model, approach, context_switch=1049
        )
        assert breakdown is not None

        def verdict(penalty):
            tasks = [
                TaskSpec(name=t.name, wcet=model.wcet(t.name, penalty),
                         period=t.period, priority=t.priority)
                for t in ctx.system.tasks
            ]
            return compute_system_wcrt(
                TaskSystem(tasks=tasks),
                cpre=lambda l, h: ctx.crpd.cpre(l, h, approach,
                                                miss_penalty=penalty),
                context_switch=1049,
            ).schedulable

        assert verdict(breakdown)
        assert not verdict(breakdown + 1)
