"""Tests for the schedulability sensitivity analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Approach
from repro.analysis.sensitivity import (
    PenaltyModel,
    breakdown_miss_penalty,
    critical_scaling_factor,
)
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt, zero_cpre


def light_system():
    return TaskSystem(
        tasks=[
            TaskSpec(name="high", wcet=10, period=100, priority=1),
            TaskSpec(name="low", wcet=20, period=400, priority=2),
        ]
    )


class TestCriticalScaling:
    def test_light_system_has_headroom(self):
        factor = critical_scaling_factor(light_system(), zero_cpre)
        assert factor > 1.5

    def test_scaled_system_actually_schedulable_at_factor(self):
        system = light_system()
        factor = critical_scaling_factor(system, zero_cpre)
        scaled = TaskSystem(
            tasks=[
                TaskSpec(
                    name=t.name,
                    wcet=max(1, int(t.wcet * factor * 0.99)),
                    period=t.period,
                    priority=t.priority,
                )
                for t in system.tasks
            ]
        )
        assert compute_system_wcrt(scaled).schedulable

    def test_unschedulable_returns_zero_or_tiny(self):
        system = TaskSystem(
            tasks=[
                TaskSpec(name="hog", wcet=90, period=100, priority=1),
                TaskSpec(name="victim", wcet=50, period=200, priority=2),
            ]
        )
        factor = critical_scaling_factor(system, zero_cpre)
        assert factor < 1.0

    def test_crpd_reduces_headroom(self):
        without = critical_scaling_factor(light_system(), zero_cpre)
        with_crpd = critical_scaling_factor(
            light_system(), lambda low, high: 30, context_switch=5
        )
        assert with_crpd < without

    def test_upper_cap(self):
        tiny = TaskSystem(
            tasks=[TaskSpec(name="t", wcet=1, period=10**6, priority=1)]
        )
        assert critical_scaling_factor(tiny, zero_cpre, upper=4.0) == 4.0

    @given(cpre_cost=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30)
    def test_monotone_in_cpre(self, cpre_cost):
        base = critical_scaling_factor(light_system(), zero_cpre)
        worse = critical_scaling_factor(
            light_system(), lambda l, h: cpre_cost
        )
        assert worse <= base + 1e-6


class TestPenaltyModel:
    def test_calibration_roundtrip(self):
        model = PenaltyModel.calibrate(
            wcets_low={"t": 1000}, wcets_high={"t": 1400},
            penalty_low=10, penalty_high=30,
        )
        assert model.misses["t"] == 20
        assert model.base["t"] == 800
        assert model.wcet("t", 0) == 800
        assert model.wcet("t", 40) == 1600

    def test_nonlinear_rejected(self):
        with pytest.raises(ValueError, match="not linear"):
            PenaltyModel.calibrate(
                wcets_low={"t": 1000}, wcets_high={"t": 1401},
                penalty_low=10, penalty_high=30,
            )

    def test_equal_penalties_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            PenaltyModel.calibrate({"t": 1}, {"t": 1}, 10, 10)

    def test_model_matches_vm_exactly(self, experiment1_context):
        """The VM's WCET really is base + misses*penalty: predict Cmiss=40
        from measurements at 20 and 30, then verify by re-measurement."""
        from repro.experiments import EXPERIMENT_I_SPEC, build_context

        ctx20 = experiment1_context
        ctx30 = build_context(EXPERIMENT_I_SPEC, miss_penalty=30)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx20.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx30.artifacts.items()},
            20, 30,
        )
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        for name, artifacts in ctx40.artifacts.items():
            assert model.wcet(name, 40) == artifacts.wcet.cycles


class TestBreakdownPenalty:
    def test_tighter_approach_higher_breakdown(self, experiment1_context):
        from repro.experiments import EXPERIMENT_I_SPEC, build_context

        ctx = experiment1_context
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx40.artifacts.items()},
            20, 40,
        )
        breakdowns = {}
        for approach in (Approach.BUSQUETS, Approach.LEE, Approach.COMBINED):
            breakdowns[approach] = breakdown_miss_penalty(
                ctx.system, ctx.crpd, model, approach, context_switch=1049
            )
        assert breakdowns[Approach.COMBINED] is not None
        assert breakdowns[Approach.COMBINED] >= breakdowns[Approach.BUSQUETS]
        assert breakdowns[Approach.COMBINED] >= breakdowns[Approach.LEE]
        # The combined analysis buys real headroom on this task set.
        assert breakdowns[Approach.COMBINED] > breakdowns[Approach.BUSQUETS]

    def test_schedulable_at_breakdown_not_above(self, experiment1_context):
        from repro.experiments import EXPERIMENT_I_SPEC, build_context
        from repro.wcrt import TaskSpec, TaskSystem

        ctx = experiment1_context
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx40.artifacts.items()},
            20, 40,
        )
        approach = Approach.COMBINED
        breakdown = breakdown_miss_penalty(
            ctx.system, ctx.crpd, model, approach, context_switch=1049
        )
        assert breakdown is not None

        def verdict(penalty):
            tasks = [
                TaskSpec(name=t.name, wcet=model.wcet(t.name, penalty),
                         period=t.period, priority=t.priority)
                for t in ctx.system.tasks
            ]
            return compute_system_wcrt(
                TaskSystem(tasks=tasks),
                cpre=lambda l, h: ctx.crpd.cpre(l, h, approach,
                                                miss_penalty=penalty),
                context_switch=1049,
            ).schedulable

        assert verdict(breakdown)
        assert not verdict(breakdown + 1)


class TestBisectionGuards:
    """The boundary-audit satellite: inputs that used to hang or lie."""

    @pytest.mark.parametrize("precision", [0.0, -1e-3, float("nan")])
    def test_bad_precision_rejected(self, precision):
        with pytest.raises(ValueError, match="precision"):
            critical_scaling_factor(
                light_system(), zero_cpre, precision=precision
            )

    @pytest.mark.parametrize("upper", [0.5, 0.0, float("inf"), float("nan")])
    def test_bad_upper_rejected(self, upper):
        with pytest.raises(ValueError, match="upper"):
            critical_scaling_factor(light_system(), zero_cpre, upper=upper)

    def test_negative_max_penalty_rejected(self):
        model = PenaltyModel(base={"high": 10}, misses={"high": 2})
        with pytest.raises(ValueError, match="max_penalty"):
            breakdown_miss_penalty(
                light_system(), None, model, Approach.COMBINED, max_penalty=-1
            )


class _ConstantMissCRPD:
    """Stub analyzer: every preemption costs `lines * penalty` cycles."""

    def __init__(self, lines):
        self.lines = lines

    def cpre(self, preempted, preempting, approach, miss_penalty):
        return self.lines * miss_penalty


class TestHandDerivedBoundaries:
    def test_scaling_boundary_single_task(self):
        # One task, wcet 40, period 100, no CRPD: schedulable exactly
        # while int(40 * f) <= 100, so the true boundary is f = 2.525.
        system = TaskSystem(
            tasks=[TaskSpec(name="solo", wcet=40, period=100, priority=1)]
        )
        precision = 1e-3
        factor = critical_scaling_factor(system, zero_cpre, precision=precision)
        assert 2.525 - precision <= factor <= 2.525
        # Schedulable-side: the returned factor itself must pass.
        assert int(40 * factor) <= 100

    def test_breakdown_boundary_no_preemption(self):
        # wcet(p) = 10 + 2p against a period/deadline of 100:
        # schedulable iff p <= 45, and 45 must be returned *exactly*.
        model = PenaltyModel.calibrate({"solo": 30}, {"solo": 50}, 10, 20)
        assert model.base == {"solo": 10} and model.misses == {"solo": 2}
        system = TaskSystem(
            tasks=[TaskSpec(name="solo", wcet=30, period=100, priority=1)]
        )
        crpd = _ConstantMissCRPD(lines=0)
        assert (
            breakdown_miss_penalty(system, crpd, model, Approach.COMBINED)
            == 45
        )

    def test_breakdown_boundary_with_crpd(self):
        # high: wcet 10 + 2p, period 100.  low: wcet 20 + p, period 200,
        # each preemption costs p (one line).  The low task's fixpoint is
        # R = (20+p) + ceil(R/100) * (10+2p + p); hand iteration gives
        # R = 40 + 7p for 100 < R <= 200, schedulable through p = 22
        # (R = 194) and divergent at p = 23 (R = 280 > 200).
        model = PenaltyModel(
            base={"high": 10, "low": 20}, misses={"high": 2, "low": 1}
        )
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=30, period=100, priority=1),
                TaskSpec(name="low", wcet=30, period=200, priority=2),
            ]
        )
        crpd = _ConstantMissCRPD(lines=1)
        assert (
            breakdown_miss_penalty(system, crpd, model, Approach.COMBINED)
            == 22
        )

    def test_breakdown_caps_at_max_penalty(self):
        model = PenaltyModel(base={"solo": 10}, misses={"solo": 2})
        system = TaskSystem(
            tasks=[TaskSpec(name="solo", wcet=10, period=10**6, priority=1)]
        )
        crpd = _ConstantMissCRPD(lines=0)
        assert (
            breakdown_miss_penalty(
                system, crpd, model, Approach.COMBINED, max_penalty=500
            )
            == 500
        )

    def test_breakdown_none_when_penalty_zero_fails(self):
        # The model (not the input system's wcet) drives the probes:
        # already at penalty 0 the modelled WCET of 150 exceeds the
        # period of 100.
        model = PenaltyModel(base={"solo": 150}, misses={"solo": 2})
        system = TaskSystem(
            tasks=[TaskSpec(name="solo", wcet=90, period=100, priority=1)]
        )
        crpd = _ConstantMissCRPD(lines=0)
        assert (
            breakdown_miss_penalty(system, crpd, model, Approach.COMBINED)
            is None
        )

    @given(lines=st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_breakdown_monotone_in_crpd_magnitude(self, lines):
        model = PenaltyModel(
            base={"high": 10, "low": 20}, misses={"high": 2, "low": 1}
        )
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=30, period=100, priority=1),
                TaskSpec(name="low", wcet=30, period=200, priority=2),
            ]
        )
        a = breakdown_miss_penalty(
            system, _ConstantMissCRPD(lines), model, Approach.COMBINED
        )
        b = breakdown_miss_penalty(
            system, _ConstantMissCRPD(lines + 1), model, Approach.COMBINED
        )
        assert b is None or (a is not None and b <= a)


class TestBreakdownVsOptimizer:
    def test_optimizer_baseline_agrees_with_the_breakdown_penalty(
        self, experiment1_context
    ):
        """At the breakdown penalty the optimizer must see a schedulable
        baseline (critical scaling factor >= 1); one past it, not."""
        from repro.analysis.store import ArtifactStore
        from repro.analysis.whatif import WhatIfSession
        from repro.experiments import EXPERIMENT_I_SPEC, build_context
        from repro.optimize import optimize

        ctx = experiment1_context
        ctx40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
        model = PenaltyModel.calibrate(
            {n: a.wcet.cycles for n, a in ctx.artifacts.items()},
            {n: a.wcet.cycles for n, a in ctx40.artifacts.items()},
            20, 40,
        )
        approach = Approach.COMBINED
        breakdown = breakdown_miss_penalty(
            ctx.system, ctx.crpd, model, approach, context_switch=1049
        )
        assert breakdown is not None

        store = ArtifactStore(directory=None, memory_slots=8192)

        def baseline_at(penalty):
            probe = WhatIfSession("exp1", miss_penalty=penalty, store=store)
            try:
                config = probe._config
            finally:
                probe.close()
            outcome = optimize(
                "exp1",
                objective="breakdown",
                approach=approach,
                budget_evals=1,
                generation=1,
                method="greedy",
                miss_penalty=penalty,
                cache_budgets=[config],
                store=store,
            )
            return outcome.default_budget

        at_breakdown = baseline_at(breakdown)
        past_breakdown = baseline_at(breakdown + 1)
        # The breakdown objective scores -critical_scaling_factor, so
        # schedulable <=> score <= -1.0.
        assert at_breakdown.baseline_payload["schedulable"]["4"]
        assert at_breakdown.baseline_score <= -1.0
        assert not past_breakdown.baseline_payload["schedulable"]["4"]
        assert past_breakdown.baseline_score > -1.0
