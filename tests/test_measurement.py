"""Tests for the controlled preemption-cost measurement harness."""

import pytest

from repro.analysis import ALL_APPROACHES, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import measure_preemption, run_preemption_study


def build_stream(name, words, reps):
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
    return b.build(), {"data": list(range(words))}


@pytest.fixture
def setup():
    # A small cache so the preemptor genuinely evicts victim lines.
    config = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=20)
    layout = SystemLayout()
    victim_program, victim_inputs = build_stream("victim", 24, 4)
    preemptor_program, preemptor_inputs = build_stream("preemptor", 24, 1)
    victim_layout = layout.place(victim_program)
    preemptor_layout = layout.place(preemptor_program)
    victim_art = analyze_task(victim_layout, {"d": victim_inputs}, config)
    preemptor_art = analyze_task(preemptor_layout, {"d": preemptor_inputs}, config)
    return {
        "config": config,
        "victim": (victim_layout, victim_inputs, victim_art),
        "preemptor": (preemptor_layout, preemptor_inputs, preemptor_art),
    }


class TestMeasurePreemption:
    def test_measures_real_reloads(self, setup):
        victim_layout, victim_inputs, victim_art = setup["victim"]
        preemptor_layout, preemptor_inputs, _ = setup["preemptor"]
        measurement = measure_preemption(
            victim_layout,
            victim_inputs,
            preemptor_layout,
            preemptor_inputs,
            lambda: CacheState(setup["config"]),
            preempt_step=150,
            victim_footprint=victim_art.footprint,
        )
        assert measurement is not None
        assert measurement.resident_before > 0
        assert measurement.evicted > 0
        assert measurement.reloaded > 0
        assert 0 <= measurement.reloaded <= measurement.evicted

    def test_extra_cycles_account_for_reloads(self, setup):
        victim_layout, victim_inputs, victim_art = setup["victim"]
        preemptor_layout, preemptor_inputs, _ = setup["preemptor"]
        measurement = measure_preemption(
            victim_layout, victim_inputs,
            preemptor_layout, preemptor_inputs,
            lambda: CacheState(setup["config"]),
            preempt_step=150,
            victim_footprint=victim_art.footprint,
        )
        # Every reload is one extra miss of miss_penalty cycles; other
        # evicted-but-task-external blocks can add more.
        penalty = setup["config"].miss_penalty
        assert measurement.extra_cycles >= measurement.reloaded * penalty

    def test_past_end_returns_none(self, setup):
        victim_layout, victim_inputs, _ = setup["victim"]
        preemptor_layout, preemptor_inputs, _ = setup["preemptor"]
        assert measure_preemption(
            victim_layout, victim_inputs,
            preemptor_layout, preemptor_inputs,
            lambda: CacheState(setup["config"]),
            preempt_step=10**9,
        ) is None

    def test_study_collects_points(self, setup):
        victim_layout, victim_inputs, victim_art = setup["victim"]
        preemptor_layout, preemptor_inputs, _ = setup["preemptor"]
        study = run_preemption_study(
            victim_layout, victim_inputs,
            preemptor_layout, preemptor_inputs,
            lambda: CacheState(setup["config"]),
            preempt_steps=[50, 150, 300, 10**9],
            victim_footprint=victim_art.footprint,
        )
        assert len(study.measurements) == 3  # the last point is past the end
        assert study.worst_reloaded >= max(
            m.reloaded for m in study.measurements
        )
        assert study.worst_extra_cycles >= 0

    def test_every_approach_dominates_study(self, setup):
        """The library-level statement of the soundness property."""
        victim_layout, victim_inputs, victim_art = setup["victim"]
        preemptor_layout, preemptor_inputs, preemptor_art = setup["preemptor"]
        crpd = CRPDAnalyzer({"victim": victim_art, "preemptor": preemptor_art})
        study = run_preemption_study(
            victim_layout, victim_inputs,
            preemptor_layout, preemptor_inputs,
            lambda: CacheState(setup["config"]),
            preempt_steps=list(range(20, 400, 60)),
            victim_footprint=victim_art.footprint,
        )
        assert study.measurements
        for approach in ALL_APPROACHES:
            bound = crpd.lines_reloaded("victim", "preemptor", approach)
            assert study.worst_reloaded <= bound, approach

    def test_empty_study(self):
        from repro.sched.measurement import PreemptionStudy

        study = PreemptionStudy()
        assert study.worst_reloaded == 0
        assert study.worst_extra_cycles == 0
