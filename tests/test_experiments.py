"""Tests for experiment setup and the regenerated tables and figures.

These check the *shape* criteria from DESIGN.md section 6: estimate
orderings, soundness against the simulator and growth with the cache-miss
penalty.  Session-scoped fixtures keep the expensive analyses shared.
"""

import pytest

from repro.analysis import ALL_APPROACHES, Approach
from repro.experiments import (
    ALL_SPECS,
    EXPERIMENT_I_SPEC,
    EXPERIMENT_II_SPEC,
    ExperimentSuite,
    build_context,
    figure1_schedule,
    figure2_mapping,
    figure3_conflicts,
    figure4_ed_cfg,
    figure5_architecture,
    table1_tasks,
    table2_cache_lines,
    table_improvement,
    table_wcrt,
)


class TestSpecs:
    def test_specs_well_formed(self):
        for spec in ALL_SPECS:
            assert set(spec.builders) == set(spec.priority_order)
            assert set(spec.periods) == set(spec.priority_order)
            assert sorted(spec.placement_order) == sorted(spec.priority_order)
            priorities = spec.priorities()
            assert priorities[spec.priority_order[0]] == 2

    def test_periods_rate_monotonic(self):
        for spec in ALL_SPECS:
            ordered = [spec.periods[name] for name in spec.priority_order]
            assert ordered == sorted(ordered)


class TestContext:
    def test_context_builds(self, experiment1_context):
        context = experiment1_context
        assert set(context.artifacts) == set(context.priority_order)
        assert context.system.utilization < 1.0
        for name, artifacts in context.artifacts.items():
            assert artifacts.wcet.cycles > 0
            assert len(artifacts.footprint) > 0

    def test_bindings_use_worst_scenario(self, experiment1_context):
        bindings = experiment1_context.bindings()
        assert [b.spec.name for b in bindings] == list(
            experiment1_context.priority_order
        )
        for binding in bindings:
            assert binding.inputs

    def test_simulation_cached(self, experiment1_context):
        first = experiment1_context.simulate()
        second = experiment1_context.simulate()
        assert first is second

    def test_custom_cache_override(self):
        from repro.cache import CacheConfig

        context = build_context(
            EXPERIMENT_I_SPEC, cache=CacheConfig.scaled_16k(miss_penalty=15)
        )
        assert context.config.miss_penalty == 15


class TestTable2Shape:
    @pytest.mark.parametrize("fixture", ["experiment1_context", "experiment2_context"])
    def test_approach_orderings(self, fixture, request):
        """App4 <= min(App2, App3) and App2 <= App1 for every pair."""
        context = request.getfixturevalue(fixture)
        order = list(context.priority_order)
        for estimate in context.crpd.estimate_all_pairs(order):
            lines = estimate.lines
            assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
            assert lines[Approach.COMBINED] <= lines[Approach.LEE]
            assert lines[Approach.INTERTASK] <= lines[Approach.BUSQUETS]
            assert lines[Approach.COMBINED] > 0, "degenerate zero estimate"

    def test_combined_strictly_improves_somewhere(
        self, experiment1_context, experiment2_context
    ):
        for context in (experiment1_context, experiment2_context):
            estimates = context.crpd.estimate_all_pairs(
                list(context.priority_order)
            )
            assert any(
                e.lines[Approach.COMBINED]
                < min(e.lines[Approach.INTERTASK], e.lines[Approach.LEE])
                for e in estimates
            )

    def test_crossover_app3_beats_app2_exists(self, experiment2_context):
        """The paper's ADPCMC-by-ADPCMD cell: Lee beats pure inter-task."""
        estimates = experiment2_context.crpd.estimate_all_pairs(
            list(experiment2_context.priority_order)
        )
        assert any(
            e.lines[Approach.LEE] < e.lines[Approach.INTERTASK] for e in estimates
        )

    def test_table2_renders(self, experiment1_context):
        table = table2_cache_lines(experiment1_context)
        text = table.render()
        assert "OFDM by MR" in text
        assert len(table.rows) == 3


class TestTable1:
    def test_table1_contents(self, experiment1_context, experiment2_context):
        table = table1_tasks(
            {"exp1": experiment1_context, "exp2": experiment2_context}
        )
        assert len(table.rows) == 6
        tasks = table.column("Task")
        assert "OFDM" in tasks and "IDCT" in tasks
        for wcet, period in zip(
            table.column("WCET (cycles)"), table.column("Period (cycles)")
        ):
            assert wcet < period


@pytest.fixture(scope="session")
def suite1():
    return ExperimentSuite(EXPERIMENT_I_SPEC, penalties=(10, 40))


@pytest.fixture(scope="session")
def suite2():
    return ExperimentSuite(EXPERIMENT_II_SPEC, penalties=(10, 40))


class TestWCRTTables:
    @pytest.mark.parametrize("suite_name", ["suite1", "suite2"])
    def test_estimates_sound_vs_art(self, suite_name, request):
        """ART <= every approach's WCRT estimate, at every penalty."""
        suite = request.getfixturevalue(suite_name)
        for penalty in suite.penalties:
            art = suite.art(penalty)
            for task in suite.preempted_tasks():
                for approach in ALL_APPROACHES:
                    estimate = suite.wcrt(penalty, approach).wcrt(task)
                    assert art[task] <= estimate, (task, penalty, approach)

    @pytest.mark.parametrize("suite_name", ["suite1", "suite2"])
    def test_app4_never_worse(self, suite_name, request):
        suite = request.getfixturevalue(suite_name)
        for penalty in suite.penalties:
            for task in suite.preempted_tasks():
                ours = suite.wcrt(penalty, Approach.COMBINED).wcrt(task)
                for other in (
                    Approach.BUSQUETS,
                    Approach.INTERTASK,
                    Approach.LEE,
                ):
                    assert ours <= suite.wcrt(penalty, other).wcrt(task)

    @pytest.mark.parametrize("suite_name", ["suite1", "suite2"])
    def test_wcrt_grows_with_penalty(self, suite_name, request):
        suite = request.getfixturevalue(suite_name)
        for task in suite.preempted_tasks():
            for approach in ALL_APPROACHES:
                low = suite.wcrt(10, approach).wcrt(task)
                high = suite.wcrt(40, approach).wcrt(task)
                assert high > low, (task, approach)

    def test_improvement_table_positive_and_growing(self, suite2):
        """Tables IV/VI shape: improvements grow with the miss penalty for
        the lowest-priority task vs Approach 1."""
        table = table_improvement(suite2)
        for row in table.rows:
            baseline, task = row[0], row[1]
            cells = row[2:]
            assert all(c >= 0 for c in cells), row
        # The App.4-vs-App.1 row for the lowest-priority task grows.
        target = next(
            row
            for row in table.rows
            if row[0] == "App.4 vs App.1" and row[1] == "ADPCMC"
        )
        assert target[-1] > target[2]

    def test_wcrt_table_renders(self, suite1):
        table = table_wcrt(suite1, include_art=True)
        text = table.render()
        assert "ART" in text
        assert len(table.rows) == len(suite1.penalties) * 2


class TestFigures:
    def test_figure1(self, experiment1_context):
        figure = figure1_schedule(experiment1_context)
        text = figure.render()
        assert "Eq.6" in text and "Eq.7" in text
        lowest = experiment1_context.priority_order[-1]
        # The no-cache-cost estimate must UNDERestimate the measured
        # response — the paper's Figure 1 message.
        assert figure.wcrt_without_cache[lowest] < figure.actual_response[lowest]
        assert figure.actual_response[lowest] <= figure.wcrt_with_cache[lowest]

    def test_figure2(self):
        text = figure2_mapping()
        assert "tag" in text and "index" in text and "offset" in text
        assert "cs(1)" in text  # 0x011 maps to set 1

    def test_figure3(self):
        figure = figure3_conflicts()
        assert figure.upper_bound == 4  # Example 4's bound
        assert figure.per_set_bound == {0: 1, 1: 3}
        assert "Equation 2" in figure.render()

    def test_figure4(self):
        text = figure4_ed_cfg()
        assert "feasible paths: 2" in text
        assert "SFP-PrS" in text

    def test_figure5(self):
        text = figure5_architecture()
        assert "Atalanta" in text and "XRAY" in text
