"""Unit tests for the RMB/LMB dataflow (Lee-style intra-task analysis)."""

import pytest

from repro.analysis.rmb_lmb import (
    first_distinct,
    last_distinct,
    solve_rmb_lmb,
)
from repro.cache import CacheConfig, CacheState
from repro.program import (
    BasicBlock,
    Branch,
    Const,
    ControlFlowGraph,
    Halt,
    Jump,
)
from repro.vm.trace import NodeRefs, NodeTraceAggregate

# Distinct blocks for a 16B-line, 8-set cache: set index = (addr >> 4) & 7.
SET0_A = 0x000
SET0_B = 0x080
SET0_C = 0x100
SET1_A = 0x010


def config(ways=2):
    return CacheConfig(num_sets=8, ways=ways, line_size=16)


def linear_cfg(labels=("a", "b", "c")):
    cfg = ControlFlowGraph(name="lin", entry=labels[0])
    for label, nxt in zip(labels, labels[1:]):
        cfg.add_block(BasicBlock(label, [], Jump(nxt)))
    cfg.add_block(BasicBlock(labels[-1], [], Halt()))
    return cfg


def diamond_cfg():
    cfg = ControlFlowGraph(name="dia", entry="entry")
    cfg.add_block(
        BasicBlock("entry", [Const("c", 1)], Branch("c", "left", "right"))
    )
    cfg.add_block(BasicBlock("left", [], Jump("join")))
    cfg.add_block(BasicBlock("right", [], Jump("join")))
    cfg.add_block(BasicBlock("join", [], Halt()))
    return cfg


def aggregate_for(cfg_config, refs_by_node):
    """Build a NodeTraceAggregate from {label: [visit tuples]}."""
    node_refs = {
        label: NodeRefs(label=label, visit_sequences=tuple(visits))
        for label, visits in refs_by_node.items()
    }
    return NodeTraceAggregate(config=cfg_config, node_refs=node_refs)


class TestDistinctHelpers:
    def test_last_distinct(self):
        assert last_distinct([1, 2, 1, 3], 2) == (3, 1)
        assert last_distinct([1, 2, 3], 10) == (3, 2, 1)
        assert last_distinct([], 2) == ()
        assert last_distinct([5, 5, 5], 2) == (5,)

    def test_first_distinct(self):
        assert first_distinct([1, 2, 1, 3], 2) == (1, 2)
        assert first_distinct([1, 1, 2], 10) == (1, 2)
        assert first_distinct([], 3) == ()


class TestRMB:
    def test_reaching_blocks_flow_forward(self):
        cfg = linear_cfg()
        cc = config()
        agg = aggregate_for(cc, {"a": [(SET0_A,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert SET0_A in result.rmb_at_exit("a", 0)
        assert SET0_A in result.rmb_at_entry("b", 0)
        assert SET0_A in result.rmb_at_entry("c", 0)
        assert result.rmb_at_entry("a", 0) == frozenset()

    def test_strong_update_fully_determines_set(self):
        """>= L distinct refs in a deterministic node kill incoming blocks."""
        cc = config(ways=1)
        cfg = linear_cfg()
        agg = aggregate_for(cc, {"a": [(SET0_A,)], "b": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        # After b, only SET0_B can reside in set 0 (1-way cache).
        assert result.rmb_at_exit("b", 0) == frozenset({SET0_B})
        assert result.rmb_at_entry("c", 0) == frozenset({SET0_B})

    def test_weak_update_keeps_incoming(self):
        """< L distinct refs: incoming blocks may survive (2-way cache)."""
        cc = config(ways=2)
        cfg = linear_cfg()
        agg = aggregate_for(cc, {"a": [(SET0_A,)], "b": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.rmb_at_entry("c", 0) == frozenset({SET0_A, SET0_B})

    def test_nondeterministic_node_unions_variants(self):
        cc = config(ways=1)
        cfg = linear_cfg(("a", "b"))
        agg = aggregate_for(cc, {"a": [(SET0_A,), (SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.rmb_at_exit("a", 0) == frozenset({SET0_A, SET0_B})

    def test_diamond_merges_paths(self):
        cc = config()
        cfg = diamond_cfg()
        agg = aggregate_for(cc, {"left": [(SET0_A,)], "right": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.rmb_at_entry("join", 0) == frozenset({SET0_A, SET0_B})

    def test_sets_are_independent(self):
        cc = config()
        cfg = linear_cfg(("a", "b"))
        agg = aggregate_for(cc, {"a": [(SET0_A, SET1_A)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.rmb_at_entry("b", 0) == frozenset({SET0_A})
        assert result.rmb_at_entry("b", 1) == frozenset({SET1_A})

    def test_loop_reaches_fixpoint(self):
        cfg = ControlFlowGraph(name="loop", entry="pre")
        cfg.add_block(BasicBlock("pre", [Const("i", 0)], Jump("head")))
        cfg.add_block(BasicBlock("head", [], Branch("i", "body", "out")))
        cfg.add_block(BasicBlock("body", [], Jump("head")))
        cfg.add_block(BasicBlock("out", [], Halt()))
        cc = config()
        agg = aggregate_for(cc, {"body": [(SET0_A,), (SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        # Blocks referenced in the loop body may reside when leaving the loop.
        assert {SET0_A, SET0_B} <= set(result.rmb_at_entry("out", 0))


class TestLMB:
    def test_living_blocks_flow_backward(self):
        cfg = linear_cfg()
        cc = config()
        agg = aggregate_for(cc, {"c": [(SET0_A,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert SET0_A in result.lmb_at_entry("a", 0)
        assert SET0_A in result.lmb_at_entry("b", 0)
        assert result.lmb_at_exit("c", 0) == frozenset()

    def test_first_L_distinct_limits_lookahead(self):
        """With a 1-way cache only the first upcoming distinct ref lives."""
        cc = config(ways=1)
        cfg = linear_cfg()
        agg = aggregate_for(cc, {"b": [(SET0_A,)], "c": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        # At entry of b, the first distinct ref to set 0 is SET0_A; SET0_B
        # comes later than L distinct refs, so it is not living here.
        assert result.lmb_at_entry("b", 0) == frozenset({SET0_A})

    def test_two_way_sees_both_upcoming(self):
        cc = config(ways=2)
        cfg = linear_cfg()
        agg = aggregate_for(cc, {"b": [(SET0_A,)], "c": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.lmb_at_entry("b", 0) == frozenset({SET0_A, SET0_B})

    def test_diamond_merges_backward(self):
        cc = config()
        cfg = diamond_cfg()
        agg = aggregate_for(cc, {"left": [(SET0_A,)], "right": [(SET0_B,)]})
        result = solve_rmb_lmb(cfg, agg, cc)
        assert result.lmb_at_exit("entry", 0) == frozenset({SET0_A, SET0_B})


class TestSoundnessAgainstSimulation:
    def test_rmb_contains_actual_residency_at_block_entries(self):
        """Run a real program; at every block entry, the task's blocks that
        are actually resident must be contained in the RMB sets."""
        from repro.program import ProgramBuilder, SystemLayout
        from repro.vm import Machine, TraceRecorder

        b = ProgramBuilder("p")
        data = b.array("data", words=24)
        out = b.array("out", words=24)
        with b.loop(2):
            with b.loop(24) as i:
                b.load("v", data, index=i)
                b.store("v", out, index=i)
        program = b.build()
        layout = SystemLayout().place(program)
        cc = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=10)

        # First pass: record the trace for analysis.
        trace = TraceRecorder()
        machine = Machine(layout=layout, cache=CacheState(cc), trace=trace)
        machine.write_array("data", list(range(24)))
        machine.run()
        agg = NodeTraceAggregate.from_recorders(cc, [trace])
        result = solve_rmb_lmb(program.cfg, agg, cc)
        footprint = agg.footprint()

        # Second pass: step and compare actual residency with RMB.
        cache = CacheState(cc)
        machine = Machine(layout=layout, cache=cache, trace=None)
        machine.write_array("data", list(range(24)))
        previous_node = machine.current_node
        while not machine.halted:
            machine.step()
            if machine.halted:
                break
            node = machine.current_node
            if node != previous_node:
                for index in range(cc.num_sets):
                    resident = {
                        blk
                        for blk in cache.set_contents(index)
                        if blk in footprint
                    }
                    allowed = result.rmb_at_entry(node, index)
                    assert resident <= set(allowed), (
                        f"set {index} at {node}: {sorted(map(hex, resident))} "
                        f"not within RMB {sorted(map(hex, allowed))}"
                    )
                previous_node = node
