"""Unit tests for the warm worker pool and the bounded intern table.

The :class:`~repro.batch.pool.WarmPool` carries three contracts the
batch engine, the CRPD fan-out and the fuzz runner all lean on:

* *seed dedup* — a context value is pickled and spooled exactly once,
  however often it is seeded, and ``ship_bytes`` counts those bytes;
* *warm reuse* — workers keep unpickled contexts (and their
  :func:`~repro.batch.pool.derived` state) across tasks, counted by
  ``reuse``;
* *taxonomy-faithful fallback* — pool infrastructure failures degrade to
  an in-process serial run with identical results, while analysis errors
  (:class:`~repro.errors.ReproError`) propagate unchanged.

The intern-table bound (``repro.cache.kernels``) is the satellite that
makes warm workers safe: a worker living through thousands of cases must
not grow its block-set table without limit.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.batch.pool import WarmPool, derived, in_worker
from repro.cache.kernels import (
    DEFAULT_INTERN_LIMIT,
    intern_blocks,
    intern_limit,
    intern_table_size,
    reset_intern_table,
    set_intern_limit,
)
from repro.errors import ReproError
from repro.obs import observed


def _double(context, item):
    return (context or 0) * 0 + item * 2


def _with_context(context, item):
    return (context["base"], item)


def _report_in_worker(context, item):
    return in_worker()


def _raise_repro(context, item):
    raise ReproError(f"analysis failed on {item}")


def _derived_id(context, item):
    value = derived(context, "probe", lambda: object())
    return id(value)


class TestWarmPoolBasics:
    def test_serial_map_preserves_order_and_counts(self):
        with WarmPool(jobs=1) as pool:
            assert pool.map(_double, [3, 1, 2]) == [6, 2, 4]
            assert pool.map(_double, []) == []
            assert pool.tasks == 3

    def test_parallel_map_preserves_order(self):
        with WarmPool(jobs=2) as pool:
            token = pool.seed({"base": 7})
            results = pool.map(_with_context, list(range(8)), context=token)
        assert results == [(7, i) for i in range(8)]

    def test_closed_pool_refuses_work(self):
        pool = WarmPool(jobs=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map(_double, [1])
        with pytest.raises(RuntimeError):
            pool.seed("ctx")

    def test_unknown_context_token_is_an_error(self):
        with WarmPool(jobs=1) as pool:
            with pytest.raises(KeyError):
                pool.map(_double, [1], context="not-a-token")


class TestSeedDedup:
    def test_equal_contexts_ship_once(self):
        with observed() as (_, metrics):
            with WarmPool(jobs=1) as pool:
                token1 = pool.seed({"layouts": list(range(100))})
                shipped = pool.ship_bytes
                assert shipped > 0
                token2 = pool.seed({"layouts": list(range(100))})
                assert token1 == token2
                assert pool.ship_bytes == shipped  # no second write
                token3 = pool.seed({"layouts": list(range(101))})
                assert token3 != token1
                assert pool.ship_bytes > shipped
        counters = metrics.to_dict()["counters"]
        assert counters["batch.pool.contexts"] == 2
        assert counters["batch.pool.ship_bytes"] == pool.ship_bytes


class TestWarmReuse:
    def test_workers_serve_repeat_contexts_warm(self):
        items = list(range(10))
        with WarmPool(jobs=2) as pool:
            token = pool.seed({"base": 1})
            pool.map(_with_context, items, context=token)
            first_round_reuse = pool.reuse
            # Each worker unpickles the context at most once, so at least
            # items - jobs tasks were served warm already in round one.
            assert first_round_reuse >= len(items) - pool.jobs
            # A second map against the same token is entirely warm.
            pool.map(_with_context, items, context=token)
            assert pool.reuse >= first_round_reuse + len(items)

    def test_in_worker_flag_matches_execution_path(self):
        assert in_worker() is False
        with WarmPool(jobs=2) as pool:
            token = pool.seed("ctx")
            assert all(pool.map(_report_in_worker, [1, 2], context=token))
        with WarmPool(jobs=1) as pool:
            token = pool.seed("ctx")
            assert pool.map(_report_in_worker, [1], context=token) == [False]

    def test_derived_state_is_memoized_per_context(self):
        context_a, context_b = {"k": "a"}, {"k": "b"}
        first = derived(context_a, "probe", lambda: object())
        assert derived(context_a, "probe", lambda: object()) is first
        assert derived(context_b, "probe", lambda: object()) is not first


class TestFallbackAndErrors:
    def test_unpicklable_item_falls_back_to_identical_serial_run(self):
        items = [1, 2, (lambda: 3)]  # the lambda cannot cross the fork

        def fn(context, item):
            return item() * 2 if callable(item) else item * 2

        # fn itself is a closure (also unpicklable) — either payload
        # triggers the PicklingError that degrades the pool.
        with observed() as (_, metrics):
            with WarmPool(jobs=2) as pool:
                assert pool.map(fn, items) == [2, 4, 6]
                assert pool.fallbacks == 1
                # The pool stays serial: no second fallback, still correct.
                assert pool.map(fn, [5]) == [10]
                assert pool.fallbacks == 1
        assert metrics.to_dict()["counters"]["batch.pool.fallbacks"] == 1

    def test_fallback_does_not_wedge_interpreter_exit(self):
        # Regression: _fall_back used to shut the broken executor down
        # with cancel_futures=True, racing terminate_broken()'s
        # set_exception() on the same futures (3.11 has no
        # cancelled-check there).  The manager thread then died before
        # reaping workers and the interpreter hung forever at exit
        # joining it.  A subprocess with a timeout is the only faithful
        # probe for "exit completes".
        script = textwrap.dedent(
            """
            from repro.batch.pool import WarmPool

            pool = WarmPool(jobs=2)
            items = [1, 2, (lambda: 3)]

            def fn(context, item):
                return item() * 2 if callable(item) else item * 2

            assert pool.map(fn, items) == [2, 4, 6]
            assert pool.fallbacks == 1
            print("fell back cleanly")
            # No pool.close(): exit must still complete promptly.
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fell back cleanly" in proc.stdout

    def test_analysis_errors_propagate_without_fallback(self):
        with WarmPool(jobs=2) as pool:
            with pytest.raises(ReproError, match="analysis failed"):
                pool.map(_raise_repro, [1, 2])
            assert pool.fallbacks == 0
        with WarmPool(jobs=1) as pool:
            with pytest.raises(ReproError):
                pool.map(_raise_repro, [1])
            assert pool.fallbacks == 0


class TestInternBound:
    @pytest.fixture(autouse=True)
    def _restore_limit(self):
        yield
        set_intern_limit(DEFAULT_INTERN_LIMIT)
        reset_intern_table()

    def test_table_never_exceeds_the_limit_over_1000_cases(self):
        """A warm worker living through 1000 unrelated cases keeps its
        intern table bounded — the growth that motivated per-case resets
        before the bound existed."""
        set_intern_limit(64)
        reset_intern_table()
        with observed() as (_, metrics):
            for case in range(1000):
                blocks = frozenset({case, case + 1_000_000})
                canonical = intern_blocks(blocks)
                assert canonical == blocks
                assert intern_table_size() <= intern_limit()
        snapshot = metrics.to_dict()
        # 1000 distinct sets through a 64-slot table: many forced clears,
        # and the gauge tracks the live size.
        assert snapshot["counters"]["kernels.intern.resets"] >= 1000 // 64 - 1
        assert snapshot["gauges"]["kernels.intern_size"] == intern_table_size()
        assert intern_table_size() <= 64

    def test_interning_still_deduplicates_within_a_generation(self):
        set_intern_limit(64)
        reset_intern_table()
        first = intern_blocks(frozenset({1, 2, 3}))
        assert intern_blocks(frozenset({1, 2, 3})) is first

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            set_intern_limit(0)
