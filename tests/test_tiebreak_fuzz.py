"""Same-instant tie-breaking: heap queues vs the scan specification.

The equivalence contract (module comment in :mod:`repro.sched.simulator`)
says the heap queues are *observably identical* to the linear scans, with
"first in spec list order" as the tie-break of last resort.  Three layers
pin that here:

* **System level** — ``TaskSystem`` rejects duplicate priorities, so an
  equal-priority dispatch tie is unconstructible through the public API;
  the first test documents that as the contract's load-bearing premise.
* **Queue level** — equal-priority full ties *are* constructible against
  the queue classes directly; both implementations must resolve them to
  the first-pushed job (the scan's stable ``min``, the heap's sequence
  number).
* **Fuzz level** — seeded random systems engineered for coincident
  events: zero offsets (every task releases at t=0), periods sharing a
  base so boundaries collide, jitters that make distinct releases become
  ready at the same instant, context switches on and off, and runtimes
  long enough that one ``release_due`` batch spans several period
  boundaries.  Heap and scan must produce identical event streams, job
  records and end times.
"""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheConfig, CacheState
from repro.errors import ConfigError
from repro.program import SystemLayout
from repro.sched.simulator import (
    Simulator,
    TaskBinding,
    _HeapReadyQueue,
    _HeapReleaseQueue,
    _HeapWaitingQueue,
    _Job,
    _ScanReadyQueue,
    _ScanReleaseQueue,
    _ScanWaitingQueue,
)
from repro.wcrt import TaskSpec, TaskSystem

from tests.conftest import make_streaming_program


def test_equal_priority_ties_are_unconstructible():
    """The dispatch tie-break never has to order equal priorities because
    TaskSystem (which every Simulator builds) rejects them outright."""
    with pytest.raises(ConfigError, match="duplicate priorities"):
        TaskSystem(
            tasks=[
                TaskSpec("a", wcet=5, period=50, priority=1),
                TaskSpec("b", wcet=5, period=50, priority=1),
            ]
        )


def _job(task: str, index: int = 0, release: int = 0, ready: int = 0,
         priority: int = 1) -> _Job:
    # The queues never touch the machine; a placeholder keeps these tests
    # free of VM setup.
    return _Job(task=task, index=index, release=release, ready=ready,
                priority=priority, machine=None)


class TestReadyQueueTieContract:
    def test_full_tie_resolves_to_first_pushed(self):
        """Identical (priority, release, index): the scan's stable min
        picks the earlier list entry; the heap's sequence number must
        agree."""
        for queue in (_HeapReadyQueue(), _ScanReadyQueue()):
            first, second = _job("a"), _job("b")
            queue.push(first)
            queue.push(second)
            assert queue.peek() is first, type(queue).__name__
            queue.remove(first)
            assert queue.peek() is second, type(queue).__name__

    def test_release_time_breaks_priority_ties_before_list_order(self):
        for queue in (_HeapReadyQueue(), _ScanReadyQueue()):
            late = _job("late", release=10, ready=10)
            early = _job("early", release=5, ready=10)
            queue.push(late)
            queue.push(early)  # pushed second, released earlier
            assert queue.peek() is early, type(queue).__name__


class TestWaitingQueueTieContract:
    def test_same_instant_handover_is_insertion_order(self):
        """Jobs becoming ready at the same instant must reach the ready
        queue in push order in both implementations (the heap re-sorts
        its pops by sequence number for exactly this reason)."""
        for queue in (_HeapWaitingQueue(), _ScanWaitingQueue()):
            jobs = [_job(f"t{i}", ready=7) for i in range(4)]
            for job in jobs:
                queue.push(job)
            assert queue.pop_due(7) == jobs, type(queue).__name__

    def test_pop_due_leaves_future_jobs(self):
        for queue in (_HeapWaitingQueue(), _ScanWaitingQueue()):
            due, future = _job("due", ready=3), _job("future", ready=9)
            queue.push(future)
            queue.push(due)
            assert queue.pop_due(5) == [due]
            assert queue.earliest() == 9


class TestReleaseQueueBatches:
    def _bindings(self):
        program = make_streaming_program("tie", words=4, reps=1)
        layout = SystemLayout().place(program)
        return {
            name: TaskBinding(
                spec=TaskSpec(name, wcet=1, period=period, priority=priority),
                layout=layout,
            )
            for name, period, priority in (("a", 10, 1), ("b", 15, 2))
        }

    def test_multi_boundary_batches_agree_after_time_sort(self):
        """A batch spanning several boundaries (the clock jumped while a
        job ran) may come out of the two queues in different raw orders —
        the scan walks per task, the heap walks per time — but the
        simulator's stable sort by event time must make the observable
        streams identical: time-ordered, declaration order at any single
        instant."""
        bindings = self._bindings()
        heap = _HeapReleaseQueue(bindings, horizon=31)
        scan = _ScanReleaseQueue(bindings, horizon=31)
        batches = (heap.pop_due(30), scan.pop_due(30))
        expected = [
            (0, "a"), (0, "b"), (10, "a"), (15, "b"), (20, "a"),
            (30, "a"), (30, "b"),
        ]
        for batch in batches:
            stable = sorted(
                [(t, name) for t, name, _ in batch], key=lambda item: item[0]
            )
            assert stable == expected
        assert heap.earliest() is None and scan.earliest() is None


CONFIG = CacheConfig(num_sets=8, ways=2, line_size=8, miss_penalty=10)


def _random_system(rng: random.Random):
    """2-3 tasks engineered for coincident instants: zero offsets, periods
    on a shared base, jitters that can collide distinct releases."""
    base = rng.choice((32, 64, 128))
    tasks = []
    for i in range(rng.randrange(2, 4)):
        words = rng.randrange(4, 17)
        program = make_streaming_program(f"t{i}", words=words, reps=1)
        period = base * rng.randrange(1, 5)
        jitter = rng.choice((0, 0, 1, base // 2, period - 2))
        tasks.append(
            TaskBinding(
                spec=TaskSpec(
                    f"t{i}", wcet=1, period=period, priority=i + 1,
                    jitter=min(jitter, period - 1),
                ),
                layout=SystemLayout().place(program),
                inputs={"data": list(range(words))},
            )
        )
    horizon = base * 8
    ccs = rng.choice((0, 0, 3))
    return tasks, horizon, ccs


@pytest.mark.parametrize("seed", range(25))
def test_fuzzed_tie_systems_heap_equals_scan(seed):
    rng = random.Random(f"tiebreak:{seed}")
    tasks, horizon, ccs = _random_system(rng)
    results = {}
    for impl in ("heap", "scan"):
        simulator = Simulator(
            [
                TaskBinding(spec=b.spec, layout=b.layout, inputs=b.inputs)
                for b in tasks
            ],
            cache=CacheState(CONFIG),
            context_switch_cycles=ccs,
            queue_impl=impl,
        )
        results[impl] = simulator.run(horizon)
    heap, scan = results["heap"], results["scan"]
    assert heap.events == scan.events
    assert heap.jobs == scan.jobs
    assert heap.end_time == scan.end_time
    assert heap.unfinished_jobs == scan.unfinished_jobs
