"""WCRT terminal states: converged vs deadline overrun vs divergence.

The response-time iteration (Eq. 6/7) can end three ways and the results
must stay distinguishable — a deadline overrun is an *exact* verdict of
unschedulability, while iteration-budget exhaustion (divergence, typically
utilization > 1) is a *conservative* one that lands in the degradation
ledger as a ``DivergenceError`` entry (or raises it in strict mode).
"""

from __future__ import annotations

import pytest

from repro.errors import DivergenceError, error_kind
from repro.guard import AnalysisBudget, DegradationLedger
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt
from repro.wcrt.response_time import compute_task_wcrt

from tests.faults import make_divergent_system, make_overloaded_system


class TestTerminalStates:
    def test_converged_status(self):
        system = make_divergent_system()
        result = compute_task_wcrt(system, "hog")
        assert result.converged and result.schedulable
        assert result.status == "converged"
        assert not result.deadline_stopped and not result.diverged

    def test_deadline_overrun_is_exact_not_degraded(self):
        system = make_divergent_system()
        ledger = DegradationLedger()
        result = compute_task_wcrt(
            system, "victim", stop_at_deadline=True, ledger=ledger
        )
        assert result.status == "deadline_overrun"
        assert result.deadline_stopped
        assert not result.converged and not result.diverged
        assert not result.schedulable
        # Crossing the deadline proves unschedulability exactly: no ledger
        # entry, the result is not a degradation.
        assert ledger.soundness == "exact"

    def test_divergence_is_conservative_with_ledger_entry(self):
        system = make_divergent_system()
        ledger = DegradationLedger()
        result = compute_task_wcrt(
            system,
            "victim",
            stop_at_deadline=False,
            budget=AnalysisBudget(max_wcrt_iterations=40),
            ledger=ledger,
        )
        assert result.status == "diverged"
        assert result.diverged and not result.converged
        assert not result.deadline_stopped
        assert not result.schedulable  # sound verdict
        assert result.iteration_count <= 41
        assert ledger.soundness == "conservative"
        (event,) = ledger.for_stage("wcrt:victim")
        assert event.budget == "max_wcrt_iterations"
        assert "DivergenceError" in event.reason

    def test_strict_budget_raises_divergence_error(self):
        system = make_divergent_system()
        with pytest.raises(DivergenceError) as info:
            compute_task_wcrt(
                system,
                "victim",
                stop_at_deadline=False,
                budget=AnalysisBudget(max_wcrt_iterations=40, strict=True),
            )
        assert info.value.task == "victim"
        assert info.value.exit_code == 4
        assert error_kind(info.value) == "divergence"

    def test_diverged_wcrt_is_still_a_lower_bound(self):
        system = make_divergent_system()
        result = compute_task_wcrt(
            system,
            "victim",
            stop_at_deadline=False,
            budget=AnalysisBudget(max_wcrt_iterations=40),
            ledger=DegradationLedger(),
        )
        # The recurrence is monotone, so the last iterate bounds the true
        # (here: infinite) response from below and exceeds the WCET.
        assert result.wcrt >= system.task("victim").wcet
        assert result.iterations == sorted(result.iterations)


class TestOverloadRegression:
    """Utilization > 1 need not diverge: the states must not be conflated."""

    def test_overloaded_system_converges_above_deadline(self):
        system = make_overloaded_system()
        assert system.utilization > 1
        result = compute_task_wcrt(system, "victim", stop_at_deadline=False)
        assert result.status == "converged"
        assert result.converged and not result.diverged
        assert result.wcrt == 18  # fixpoint of R = 6 + ceil(R/10)*6
        assert not result.schedulable  # 18 > deadline 10

    def test_overloaded_system_deadline_stop(self):
        system = make_overloaded_system()
        result = compute_task_wcrt(system, "victim", stop_at_deadline=True)
        assert result.status == "deadline_overrun"
        assert not result.diverged

    def test_divergent_system_utilization_exceeds_one(self):
        assert make_divergent_system().utilization > 1


class TestSystemWCRTLedger:
    def test_system_result_reports_diverged_tasks(self):
        wcrt = compute_system_wcrt(
            make_divergent_system(),
            stop_at_deadline=False,
            budget=AnalysisBudget(max_wcrt_iterations=40),
        )
        assert wcrt.diverged_tasks() == ["victim"]
        assert wcrt.unschedulable_tasks() == ["victim"]
        assert not wcrt.schedulable
        assert wcrt.soundness == "conservative"
        assert "max_wcrt_iterations" in wcrt.ledger.tripped_budgets()

    def test_shared_ledger_is_the_result_ledger(self):
        ledger = DegradationLedger()
        wcrt = compute_system_wcrt(
            make_divergent_system(),
            stop_at_deadline=False,
            budget=AnalysisBudget(max_wcrt_iterations=40),
            ledger=ledger,
        )
        assert wcrt.ledger is ledger

    def test_exact_system_has_empty_ledger(self):
        system = TaskSystem(
            tasks=[
                TaskSpec("a", wcet=2, period=10, priority=1),
                TaskSpec("b", wcet=3, period=20, priority=2),
            ]
        )
        wcrt = compute_system_wcrt(system, budget=AnalysisBudget())
        assert wcrt.schedulable
        assert wcrt.soundness == "exact"
        assert wcrt.diverged_tasks() == []
