"""Unit tests for the unified CRPD analyzer (the four approaches, Eq. 5)."""

import pytest

from repro.analysis import ALL_APPROACHES, Approach, CRPDAnalyzer


class TestAnalyzer:
    def test_requires_tasks(self):
        with pytest.raises(ValueError, match="no tasks"):
            CRPDAnalyzer({})

    def test_requires_uniform_cache(self, analyzed_pair):
        from repro.analysis import analyze_task
        from repro.cache import CacheConfig
        from repro.program import ProgramBuilder, SystemLayout

        other_config = CacheConfig(num_sets=8, ways=2, line_size=16)
        b = ProgramBuilder("odd")
        data = b.array("data", words=4)
        b.load("v", data, index=0)
        layout = SystemLayout(base_address=0x90000).place(b.build())
        odd = analyze_task(layout, {"d": {"data": [0] * 4}}, other_config)
        with pytest.raises(ValueError, match="cache configuration"):
            CRPDAnalyzer({"low": analyzed_pair["low"], "odd": odd})

    def test_unknown_task_rejected(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        with pytest.raises(KeyError, match="ghost"):
            crpd.lines_reloaded("ghost", "high", Approach.BUSQUETS)

    def test_ordering_invariants(self, analyzed_pair):
        """App4 <= App2 <= App1 and App4 <= App3 (Sections V-VI)."""
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        lines = {
            a: crpd.lines_reloaded("low", "high", a) for a in ALL_APPROACHES
        }
        assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
        assert lines[Approach.INTERTASK] <= lines[Approach.BUSQUETS]
        assert lines[Approach.COMBINED] <= lines[Approach.LEE]

    def test_cpre_is_lines_times_penalty(self, analyzed_pair):
        """Equation 5."""
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        lines = crpd.lines_reloaded("low", "high", Approach.COMBINED)
        penalty = analyzed_pair["config"].miss_penalty
        assert crpd.cpre("low", "high", Approach.COMBINED) == lines * penalty
        assert crpd.cpre("low", "high", Approach.COMBINED, miss_penalty=7) == (
            lines * 7
        )

    def test_estimates_cached(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        first = crpd.lines_reloaded("low", "high", Approach.COMBINED)
        assert crpd.lines_reloaded("low", "high", Approach.COMBINED) == first
        assert ("low", "high", Approach.COMBINED) in crpd._lines_cache

    def test_estimate_pair_covers_all_approaches(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        estimate = crpd.estimate_pair("low", "high")
        assert set(estimate.lines) == set(ALL_APPROACHES)
        assert "low by high" in estimate.describe()

    def test_estimate_all_pairs_priority_structure(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        estimates = crpd.estimate_all_pairs(["high", "low"])
        assert len(estimates) == 1
        assert estimates[0].preempted == "low"
        assert estimates[0].preempting == "high"

    def test_lee_ignores_preempting_task(self, analyzed_pair):
        """Approach 3 depends only on the preempted task (Section VIII)."""
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        a = crpd.lines_reloaded("low", "high", Approach.LEE)
        b = crpd.lines_reloaded("low", "low", Approach.LEE)
        assert a == b

    def test_per_point_mode_propagates(self, analyzed_pair):
        paper = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]},
            mumbs_mode="paper",
        )
        sound = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]},
            mumbs_mode="per_point",
        )
        # The sound joint maximisation dominates Definition 4's value.
        assert sound.lines_reloaded(
            "low", "high", Approach.COMBINED
        ) >= paper.lines_reloaded("low", "high", Approach.COMBINED)

    def test_default_mode_is_sound_per_point(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        assert crpd.mumbs_mode == "per_point"

    def test_plain_int_approach_accepted(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        assert crpd.lines_reloaded("low", "high", 4) == crpd.lines_reloaded(
            "low", "high", Approach.COMBINED
        )
