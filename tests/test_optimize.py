"""Tests for the layout/coloring optimizer (``repro optimize``).

Pins the ISSUE satellites: seeded determinism (same seed => byte-identical
move log and Pareto front), ``anneal best <= greedy best <= baseline`` on
both paper experiments, parameter validation, and the Pareto/score
helpers in isolation.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.analysis.crpd import Approach
from repro.analysis.store import ArtifactStore
from repro.analysis.whatif import WhatIfSession
from repro.cache.config import CacheConfig
from repro.cli import main
from repro.errors import ConfigError
from repro.fuzz.spec import (
    CacheSpec,
    MemSpec,
    ProgramSpec,
    SystemSpec,
    TaskDef,
)
from repro.optimize import (
    MOVE_KINDS,
    MoveProposer,
    default_cache_budgets,
    dominates,
    optimize,
    pareto_front,
    wcrt_score,
)
from repro.program.layout import LayoutAssignment, LayoutError


def small_spec() -> SystemSpec:
    """The same fixed two-task system ``tests/test_whatif.py`` uses."""
    return SystemSpec(
        cache=CacheSpec(num_sets=8, ways=2, line_size=8, miss_penalty=10),
        tasks=(
            TaskDef(
                program=ProgramSpec(
                    arrays=(16,), body=(MemSpec(array=0, count=16),)
                ),
                period_mult=6,
            ),
            TaskDef(
                program=ProgramSpec(
                    arrays=(24, 8),
                    body=(
                        MemSpec(array=0, count=24, store=True),
                        MemSpec(array=1, count=8),
                    ),
                ),
                period_mult=8,
            ),
        ),
        context_switch=7,
    )


class TestPareto:
    def test_dominates_minimizes_both_axes(self):
        a = {"x": 1, "y": 5}
        b = {"x": 2, "y": 5}
        assert dominates(a, b, "x", "y")
        assert not dominates(b, a, "x", "y")
        # Equal points do not dominate each other (weak dominance needs
        # one strict improvement).
        assert not dominates(a, dict(a), "x", "y")

    def test_front_drops_dominated_and_sorts(self):
        points = [
            {"cache_bytes": 8192, "score": 100},
            {"cache_bytes": 4096, "score": 120},
            {"cache_bytes": 4096, "score": 90},  # dominates both above? no:
            # it dominates the 4096/120 point and the 8192/100 point
            # (smaller cache, better score).
            {"cache_bytes": 2048, "score": 300},
        ]
        front = pareto_front(points)
        assert front == [
            {"cache_bytes": 2048, "score": 300},
            {"cache_bytes": 4096, "score": 90},
        ]

    def test_front_keeps_incomparable_points(self):
        points = [
            {"cache_bytes": 8192, "score": 10},
            {"cache_bytes": 4096, "score": 20},
            {"cache_bytes": 2048, "score": 30},
        ]
        assert pareto_front(points) == sorted(
            points, key=lambda p: p["cache_bytes"]
        )

    def test_front_dedups_identical_coordinates(self):
        a = {"cache_bytes": 4096, "score": 10, "tag": "first"}
        b = {"cache_bytes": 4096, "score": 10, "tag": "second"}
        front = pareto_front([a, b])
        assert len(front) == 1 and front[0]["tag"] == "first"


class TestWcrtScore:
    PERIODS = {"a": 100, "b": 400}

    def payload(self, wcrt_a, wcrt_b, flag=True):
        return {
            "wcet": {"a": 1, "b": 1},
            "wcrt": {"4": {"a": wcrt_a, "b": wcrt_b}},
            "schedulable": {"4": flag},
        }

    def test_schedulable_is_plain_sum(self):
        payload = self.payload(50, 200)
        assert wcrt_score(payload, Approach.COMBINED, self.PERIODS) == 250

    def test_each_missed_deadline_adds_the_period_mass(self):
        payload = self.payload(150, 200, flag=False)  # a misses
        assert wcrt_score(payload, Approach.COMBINED, self.PERIODS) == 350 + 500
        payload = self.payload(150, 500, flag=False)  # both miss
        assert (
            wcrt_score(payload, Approach.COMBINED, self.PERIODS) == 650 + 1000
        )

    def test_unschedulable_flag_forces_a_penalty(self):
        # The system flag can trip (jitter/deadline subtleties) even when
        # no per-task wcrt exceeds its period; the score must still rank
        # such a layout behind every schedulable one.
        payload = self.payload(50, 200, flag=False)
        assert wcrt_score(payload, Approach.COMBINED, self.PERIODS) == 250 + 500

    def test_schedulable_always_beats_unschedulable(self):
        good = self.payload(99, 399)
        bad = self.payload(1, 401, flag=False)
        assert wcrt_score(good, Approach.COMBINED, self.PERIODS) < wcrt_score(
            bad, Approach.COMBINED, self.PERIODS
        )


class TestDefaultBudgets:
    def test_two_set_halvings(self):
        config = CacheConfig(num_sets=256, ways=2, line_size=16, miss_penalty=20)
        budgets = default_cache_budgets(config)
        assert [b.num_sets for b in budgets] == [256, 128, 64]
        assert all(
            (b.ways, b.line_size, b.miss_penalty) == (2, 16, 20)
            for b in budgets
        )

    def test_tiny_geometry_stops_at_two_sets(self):
        config = CacheConfig(num_sets=4, ways=1, line_size=8, miss_penalty=10)
        assert [b.num_sets for b in default_cache_budgets(config)] == [4, 2]
        config = CacheConfig(num_sets=2, ways=1, line_size=8, miss_penalty=10)
        assert [b.num_sets for b in default_cache_budgets(config)] == [2]


class TestParameterValidation:
    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"method": "tabu"}, "method"),
            ({"objective": "energy"}, "objective"),
            ({"budget_evals": 0}, "budget_evals"),
            ({"restarts": 0}, "restarts"),
        ],
    )
    def test_bad_parameters_are_config_errors(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            optimize(small_spec(), **kwargs)


class TestMoveProposer:
    def make(self):
        session = WhatIfSession(small_spec())
        try:
            programs = {
                name: session._layouts[name].program
                for name in session._order
            }
            config = session._config
            assignment = session.layout_assignment()
        finally:
            session.close()
        return MoveProposer(programs, config), assignment

    def test_same_rng_stream_same_moves(self):
        proposer, assignment = self.make()
        streams = []
        for _ in range(2):
            rng = Random("move-determinism")
            current = assignment
            moves = []
            for _ in range(60):
                move = proposer.propose(rng, current)
                moves.append((move.kind, move.detail, move.assignment))
                try:
                    proposer.materialize(move.assignment)
                except LayoutError:
                    continue
                current = move.assignment
            streams.append(moves)
        assert streams[0] == streams[1]

    def test_proposals_cover_the_move_kinds(self):
        proposer, assignment = self.make()
        rng = Random(0)
        kinds = {proposer.propose(rng, assignment).kind for _ in range(200)}
        assert kinds == set(MOVE_KINDS)

    def test_recolor_pins_the_requested_color(self):
        proposer, assignment = self.make()
        rng = Random(1)
        seen = 0
        for _ in range(200):
            move = proposer.propose(rng, assignment)
            if move.kind != "recolor":
                continue
            seen += 1
            task, rest = move.detail.split(":", 2)[1:]
            index, color = (int(x) for x in rest.split("="))
            name = proposer.arrays[task][index]
            base = dict(move.assignment.placement(task).symbols)[name]
            assert proposer.config.color_of(base) == color
            # Recolored arrays land in fresh space: still materializable.
            proposer.materialize(move.assignment)
        assert seen > 0

    def test_swap_trades_bases_and_keeps_symbols(self):
        proposer, assignment = self.make()
        a, b = proposer.tasks
        move = proposer._swap(assignment, a, b)
        pa, pb = assignment.placement(a), assignment.placement(b)
        qa = move.assignment.placement(a)
        qb = move.assignment.placement(b)
        assert (qa.code_base, qa.data_base) == (pb.code_base, pb.data_base)
        assert (qb.code_base, qb.data_base) == (pa.code_base, pa.data_base)
        assert qa.symbols == pa.symbols and qb.symbols == pb.symbols


class TestOptimizeFuzzSpec:
    """Fast end-to-end runs on the two-task fuzz system."""

    def run(self, method, seed=5):
        return optimize(
            small_spec(),
            seed=seed,
            budget_evals=12,
            method=method,
            restarts=2,
            patience=6,
        )

    def test_seeded_determinism_byte_identical(self):
        dumps = [
            json.dumps(self.run("anneal").to_dict(), sort_keys=True)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_different_seeds_walk_different_moves(self):
        logs = [
            [e["move"] for e in self.run("anneal", seed=s).move_log]
            for s in (5, 6)
        ]
        assert logs[0] != logs[1]

    def test_anneal_no_worse_than_greedy_no_worse_than_baseline(self):
        greedy = self.run("greedy")
        anneal = self.run("anneal")
        baseline = greedy.default_budget.baseline_score
        assert anneal.default_budget.baseline_score == baseline
        assert (
            anneal.default_budget.best_score
            <= greedy.default_budget.best_score
            <= baseline
        )

    def test_outcome_shape(self):
        outcome = self.run("anneal")
        assert outcome.experiment is None  # fuzz base, not an experiment
        assert outcome.evals_used <= 12
        assert outcome.move_log[0]["kind"] == "baseline"
        for entry in outcome.move_log:
            assert set(entry) >= {
                "budget", "kind", "move", "valid", "accepted", "score",
                "assignment", "eval", "restart",
            }
            if entry["valid"]:
                payload = entry["eval"]
                assert set(payload) == {"wcet", "wcrt", "schedulable"}
                LayoutAssignment.from_dict(entry["assignment"])
        front = outcome.pareto
        assert front == sorted(front, key=lambda p: p["cache_bytes"])
        assert 1 <= len(front) <= len(outcome.budgets)
        # Budget 0 is the system's own geometry.
        assert outcome.default_budget.cache.num_sets == 8

    def test_best_payload_matches_a_logged_entry(self):
        outcome = self.run("anneal")
        budget = outcome.default_budget
        logged = [
            e for e in outcome.move_log
            if e["budget"] == 0 and e["valid"]
            and e["assignment"] == budget.best_assignment.to_dict()
        ]
        assert any(
            e["eval"] == budget.best_payload and e["score"] == budget.best_score
            for e in logged
        )


@pytest.fixture(scope="module")
def shared_store():
    return ArtifactStore(directory=None, memory_slots=8192)


def experiment_config(key, store):
    session = WhatIfSession(key, store=store)
    try:
        return session._config
    finally:
        session.close()


class TestOptimizeExperiments:
    """The ordering claim on both paper experiments (slow-ish)."""

    @pytest.mark.parametrize("key", ["exp1", "exp2"])
    def test_anneal_beats_greedy_beats_baseline(self, key, shared_store):
        config = experiment_config(key, shared_store)
        outcomes = {
            method: optimize(
                key,
                seed=1,
                budget_evals=8,
                method=method,
                restarts=2,
                generation=3,
                patience=4,
                cache_budgets=[config],
                store=shared_store,
            )
            for method in ("greedy", "anneal")
        }
        greedy = outcomes["greedy"].default_budget
        anneal = outcomes["anneal"].default_budget
        assert greedy.baseline_score == anneal.baseline_score
        assert anneal.best_score <= greedy.best_score <= greedy.baseline_score
        # The baseline layout of the paper experiments is schedulable, so
        # the score is a plain WCRT sum and the best stays schedulable.
        assert anneal.best_payload["schedulable"]["4"]

    def test_improves_exp1_over_the_default_layout(self, shared_store):
        config = experiment_config("exp1", shared_store)
        outcome = optimize(
            "exp1",
            seed=3,
            budget_evals=20,
            generation=6,
            patience=8,
            restarts=2,
            cache_budgets=[config],
            store=shared_store,
        )
        budget = outcome.default_budget
        assert budget.best_score < budget.baseline_score
        assert budget.improvement_pct() > 0


class TestOptimizeCli:
    def test_cli_smoke_writes_timing_free_json(self, tmp_path, capsys):
        out = tmp_path / "optimize.json"
        argv = [
            "optimize", "--experiment", "1", "--seed", "2",
            "--budget-evals", "4", "--generation", "2", "--patience", "2",
            "--restarts", "1", "--method", "greedy",
            "--cache-budgets", "64x2x16", "--json", str(out),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr().out
        assert "WCRT before -> after" in captured
        assert "Pareto front" in captured
        assert "evaluations in" in captured
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "exp1"
        assert payload["pareto"] and payload["move_log"]
        assert "elapsed" not in payload  # byte-stable artifact: no timing

    def test_unknown_experiment_is_a_config_error(self):
        assert main(["optimize", "--experiment", "exp9"]) == 2

    def test_malformed_cache_budget_is_a_config_error(self):
        assert (
            main(["optimize", "--cache-budgets", "0x4x16"]) == 2
        )
