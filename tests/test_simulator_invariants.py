"""Structural invariants of the scheduler's event stream and accounting."""

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import EventKind, Simulator, TaskBinding
from repro.wcrt import TaskSpec


def build_system(ccs=100, jitter=0):
    config = CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=10)
    layout = SystemLayout()

    def binding(name, words, reps, period, priority):
        b = ProgramBuilder(name)
        data = b.array("data", words=words)
        out = b.array("out", words=words)
        with b.loop(reps):
            with b.loop(words) as i:
                b.load("v", data, index=i)
                b.store("v", out, index=i)
        placed = layout.place(b.build())
        spec = TaskSpec(name=name, wcet=words * reps * 12, period=period,
                        priority=priority, jitter=jitter)
        return TaskBinding(spec=spec, layout=placed,
                           inputs={"data": list(range(words))})

    bindings = [
        binding("high", 8, 20, 5_000, 1),
        binding("mid", 12, 30, 17_000, 2),
        binding("low", 16, 90, 90_000, 3),
    ]
    return Simulator(bindings, cache=CacheState(config),
                     context_switch_cycles=ccs)


@pytest.fixture(scope="module")
def result():
    return build_system().run(horizon=180_000)


class TestEventStream:
    def test_events_time_ordered(self, result):
        times = [event.time for event in result.events]
        assert times == sorted(times)

    def test_every_job_has_release_start_complete(self, result):
        by_job: dict[tuple[str, int], list[EventKind]] = {}
        for event in result.events:
            if event.job >= 0:
                by_job.setdefault((event.task, event.job), []).append(event.kind)
        for job in result.jobs:
            kinds = by_job[(job.task, job.job)]
            assert kinds.count(EventKind.RELEASE) == 1
            assert kinds.count(EventKind.START) == 1
            assert kinds.count(EventKind.COMPLETE) == 1
            # Lifecycle order.
            assert kinds.index(EventKind.RELEASE) < kinds.index(EventKind.START)
            assert kinds.index(EventKind.START) < kinds.index(EventKind.COMPLETE)

    def test_preempts_match_resumes(self, result):
        preempts = sum(1 for e in result.events if e.kind is EventKind.PREEMPT)
        resumes = sum(1 for e in result.events if e.kind is EventKind.RESUME)
        # Every preemption of a job that later completed was resumed; jobs
        # still preempted at the end of the run account for the difference.
        assert 0 <= preempts - resumes <= result.unfinished_jobs
        assert preempts == sum(job.preemptions for job in result.jobs) or (
            preempts >= sum(job.preemptions for job in result.jobs)
        )

    def test_single_processor_exclusion(self, result):
        """At most one job runs at a time: between a START/RESUME of job X
        and its next PREEMPT/COMPLETE, no other job may START/RESUME."""
        running: tuple[str, int] | None = None
        for event in result.events:
            if event.kind in (EventKind.START, EventKind.RESUME):
                assert running is None, f"overlap at t={event.time}"
                running = (event.task, event.job)
            elif event.kind in (EventKind.PREEMPT, EventKind.COMPLETE):
                if running is not None:
                    assert running == (event.task, event.job)
                running = None

    def test_priority_respected_at_dispatch(self, result):
        """A running job is only ever preempted by a higher-priority task."""
        priority = {"high": 1, "mid": 2, "low": 3}
        last_preempted: tuple[str, int] | None = None
        for event in result.events:
            if event.kind is EventKind.PREEMPT:
                last_preempted = (event.task, event.time)
            elif event.kind in (EventKind.START, EventKind.RESUME):
                if last_preempted and last_preempted[1] == event.time:
                    assert priority[event.task] < priority[last_preempted[0]]
                last_preempted = None


class TestAccounting:
    def test_busy_time_conservation(self, result):
        """Executed cycles + switch cycles + idle gaps == end time."""
        switch_cycles = 100 * sum(
            1 for e in result.events if e.kind is EventKind.CONTEXT_SWITCH
        )
        # Reconstruct executed time from run intervals.
        executed = 0
        run_since = None
        for event in result.events:
            if event.kind in (EventKind.START, EventKind.RESUME):
                run_since = event.time
            elif event.kind in (EventKind.PREEMPT, EventKind.COMPLETE):
                if run_since is not None:
                    executed += event.time - run_since
                    run_since = None
        idle = 0
        previous_busy_end = 0
        # Idle whenever nothing runs and no switch is charged: derive from
        # the complement; just check the compositions bound the end time.
        assert executed + switch_cycles <= result.end_time
        assert executed > 0

    def test_response_times_positive_and_within_horizon(self, result):
        for job in result.jobs:
            assert job.response_time > 0
            assert job.completion_time <= result.end_time

    def test_completed_plus_unfinished_equals_released(self, result):
        releases = sum(
            1 for e in result.events if e.kind is EventKind.RELEASE
        )
        assert len(result.jobs) + result.unfinished_jobs == releases


class TestJitteredInvariants:
    def test_event_invariants_hold_with_jitter(self):
        result = build_system(jitter=900).run(horizon=120_000)
        times = [event.time for event in result.events]
        assert times == sorted(times)
        running = None
        for event in result.events:
            if event.kind in (EventKind.START, EventKind.RESUME):
                assert running is None
                running = (event.task, event.job)
            elif event.kind in (EventKind.PREEMPT, EventKind.COMPLETE):
                running = None
