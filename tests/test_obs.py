"""Unit tests for the zero-dependency observability layer (``repro.obs``).

Covers span nesting and ordering, the JSONL schema contract, histogram
bucketing and merge, the disabled-mode overhead bound, and deterministic
span adoption across the ``jobs=2`` process fan-out.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    SPAN_RECORD_KEYS,
    STATE,
    TRACE_SCHEMA_VERSION,
    Histogram,
    Metrics,
    NullTracer,
    Tracer,
    install,
    observed,
    profiled,
    read_trace,
    uninstall,
)


@pytest.fixture(autouse=True)
def _obs_disabled_after():
    """Every test leaves the process-wide obs state back at its default."""
    yield
    uninstall()


class TestSpans:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_records_appear_in_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record["name"] for record in tracer.records]
        assert names == ["inner", "outer"]  # inner finishes first

    def test_attrs_and_events_land_on_the_record(self):
        tracer = Tracer()
        with tracer.span("work", task="ed") as span:
            span.set(lines=42)
            span.event("checkpoint", stage="mid")
        (record,) = tracer.records
        assert record["attrs"] == {"task": "ed", "lines": 42}
        (event,) = record["events"]
        assert event["name"] == "checkpoint"
        assert event["attrs"] == {"stage": "mid"}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record["attrs"]["error"] == "ValueError"

    def test_event_without_open_span_is_standalone_record(self):
        tracer = Tracer()
        tracer.event("ledger.degradation", stage="paths:ed")
        (record,) = tracer.records
        assert record["type"] == "event"
        assert record["parent"] is None
        assert record["dur_us"] == 0

    def test_threads_get_independent_span_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("thread-root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's span must not nest under this thread's stack.
        assert seen["parent"] is None

    def test_durations_are_monotonic_microseconds(self):
        tracer = Tracer()
        with tracer.span("outer"):
            time.sleep(0.002)
        (record,) = tracer.records
        assert record["dur_us"] >= 1000
        assert record["start_us"] >= 0


class TestJsonlSchema:
    def test_export_roundtrip_and_schema_keys(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", experiment="exp1"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["type"] == "meta"
        assert meta["v"] == TRACE_SCHEMA_VERSION
        assert meta["records"] == 2
        for line in lines[1:]:
            record = json.loads(line)
            assert set(record) == SPAN_RECORD_KEYS
            assert record["v"] == TRACE_SCHEMA_VERSION
        assert [r["name"] for r in read_trace(path)] == ["inner", "outer"]

    def test_adopt_preserves_nesting_and_reassigns_ids(self):
        worker = Tracer()
        with worker.span("analyze.task"):
            with worker.span("analyze.wcet"):
                pass
        parent = Tracer()
        with parent.span("fan") as fan:
            fan_id = fan.span_id
            parent.adopt(worker.records, parent_id=fan_id)
        by_name = {r["name"]: r for r in parent.records}
        # Records arrive in completion order (child first), so adoption
        # must remap ids in two passes to keep the intra-batch nesting.
        assert by_name["analyze.wcet"]["parent"] == by_name["analyze.task"]["id"]
        assert by_name["analyze.task"]["parent"] == fan_id
        ids = [r["id"] for r in parent.records]
        assert len(ids) == len(set(ids))


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        metrics = Metrics()
        metrics.counter("hits").inc()
        metrics.counter("hits").inc(4)
        metrics.gauge("tripped").set(False)
        metrics.histogram("sizes").observe(3)
        snapshot = metrics.to_dict()
        assert snapshot["v"] == METRICS_SCHEMA_VERSION
        assert snapshot["counters"] == {"hits": 5}
        assert snapshot["gauges"] == {"tripped": False}
        assert snapshot["histograms"]["sizes"]["count"] == 1

    def test_histogram_bucketing_at_the_boundaries(self):
        histogram = Histogram("h", bounds=(1, 10, 100))
        for value in (0, 1, 2, 10, 11, 100, 101, 5000):
            histogram.observe(value)
        # bisect_left: value <= bound lands in that bound's bucket.
        assert histogram.bucket_counts == [2, 2, 2, 2]
        assert histogram.count == 8
        assert histogram.min == 0
        assert histogram.max == 5000
        assert histogram.total == sum((0, 1, 2, 10, 11, 100, 101, 5000))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(10, 1))
        with pytest.raises(ValueError):
            Histogram("dup", bounds=(1, 1, 2))

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_merge_adds_counters_and_histogram_buckets(self):
        left, right = Metrics(), Metrics()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        right.counter("only_right").inc()
        left.histogram("h", bounds=(1, 2)).observe(1)
        right.histogram("h", bounds=(1, 2)).observe(5)
        right.gauge("g").set(7)
        left.merge(right.to_dict())
        snapshot = left.to_dict()
        assert snapshot["counters"] == {"c": 5, "only_right": 1}
        assert snapshot["gauges"] == {"g": 7}
        merged = snapshot["histograms"]["h"]
        assert merged["count"] == 2
        assert merged["counts"] == [1, 0, 1]
        assert merged["min"] == 1 and merged["max"] == 5

    def test_merge_rejects_mismatched_bounds(self):
        left, right = Metrics(), Metrics()
        left.histogram("h", bounds=(1, 2)).observe(1)
        right.histogram("h", bounds=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            left.merge(right.to_dict())

    def test_export_json(self, tmp_path):
        metrics = Metrics()
        metrics.counter("c").inc()
        path = tmp_path / "metrics.json"
        metrics.export_json(path)
        assert json.loads(path.read_text())["counters"] == {"c": 1}


class TestStateAndProfiled:
    def test_default_state_is_disabled_null_objects(self):
        assert STATE.enabled is False
        assert isinstance(STATE.tracer, NullTracer)
        assert STATE.tracer.span("anything").span_id is None

    def test_install_observed_uninstall_cycle(self):
        with observed() as (tracer, metrics):
            assert STATE.enabled is True
            assert STATE.tracer is tracer
            assert STATE.metrics is metrics
        assert STATE.enabled is False

    def test_profiled_records_span_and_counter_when_enabled(self):
        @profiled("unit.work", counter="unit.calls")
        def work(x):
            return x + 1

        with observed() as (tracer, metrics):
            assert work(1) == 2
        assert [r["name"] for r in tracer.records] == ["unit.work"]
        assert metrics.to_dict()["counters"] == {"unit.calls": 1}

    def test_profiled_is_transparent_when_disabled(self):
        @profiled()
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work.__wrapped__(21) == 42

    def test_disabled_overhead_under_five_percent(self):
        """The no-op guard on a kernel microloop costs < 5% wall time."""

        def kernel(n):
            total = 0
            for value in range(n):
                total += value
            return total

        instrumented = profiled("bench.kernel")(kernel)
        n = 200_000

        def best_of(fn, repeats=7):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                fn(n)
                best = min(best, time.perf_counter() - started)
            return best

        assert STATE.enabled is False
        base = best_of(kernel)
        traced_off = best_of(instrumented)
        # min-of-N damps scheduler noise; the wrapper adds one enabled
        # check per call against ~10ms of loop body.
        assert traced_off <= base * 1.05, (
            f"disabled instrumentation overhead "
            f"{(traced_off / base - 1) * 100:.1f}% exceeds 5%"
        )


class TestFanOutDeterminism:
    def test_jobs2_pair_fanout_merges_deterministically(
        self, experiment1_context
    ):
        """Two jobs=2 runs produce identical span trees and counters."""
        order = list(experiment1_context.priority_order)

        def run():
            with observed() as (tracer, metrics):
                experiment1_context.crpd.estimate_all_pairs(order, jobs=2)
            shape = [
                (r["name"], r["parent"], r["id"], r["attrs"].get("preempted"),
                 r["attrs"].get("preempting"))
                for r in tracer.records
            ]
            counters = {
                # Pool health telemetry (batch.pool.reuse et al.) and
                # intern-table locality (kernels.intern.*) depend on
                # which warm worker picked up which pair — scheduling,
                # not analysis — so they are exempt from the
                # determinism contract.
                name: value
                for name, value in metrics.to_dict()["counters"].items()
                if not name.startswith(("batch.pool.", "kernels.intern."))
            }
            return shape, counters

        shape1, counters1 = run()
        shape2, counters2 = run()
        assert shape1 == shape2
        assert counters1 == counters2
        names = [entry[0] for entry in shape1]
        assert names.count("crpd.pair") == 12  # 3 pairs x 4 approaches
        assert names.count("crpd.estimate_all_pairs") == 1
        # Every adopted pair span hangs off the fan-out span.
        fan = next(e for e in shape1 if e[0] == "crpd.estimate_all_pairs")
        pair_parents = {e[1] for e in shape1 if e[0] == "crpd.pair"}
        assert pair_parents == {fan[2]}
