"""Unit and property tests for the LRU cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheConfig, CacheState


@pytest.fixture
def cache():
    return CacheState(CacheConfig(num_sets=4, ways=2, line_size=16, miss_penalty=20))


class TestBasicAccess:
    def test_first_access_misses(self, cache):
        result = cache.access(0x000)
        assert not result.hit
        assert result.cycles == 20
        assert cache.stats.misses == 1

    def test_second_access_hits(self, cache):
        cache.access(0x000)
        result = cache.access(0x000)
        assert result.hit
        assert result.cycles == 0
        assert cache.stats.hits == 1

    def test_same_block_different_offset_hits(self, cache):
        cache.access(0x000)
        assert cache.access(0x00F).hit  # same 16-byte block

    def test_adjacent_block_misses(self, cache):
        cache.access(0x000)
        assert not cache.access(0x010).hit

    def test_contains(self, cache):
        assert not cache.contains(0x000)
        cache.access(0x000)
        assert cache.contains(0x000)
        assert cache.contains(0x00C)
        assert not cache.contains(0x040)  # same set, different block

    def test_hit_cycles_charged(self):
        config = CacheConfig(
            num_sets=4, ways=2, line_size=16, miss_penalty=20, hit_cycles=1
        )
        cache = CacheState(config)
        assert cache.access(0x0).cycles == 21
        assert cache.access(0x0).cycles == 1


class TestLRUReplacement:
    def test_lru_evicts_least_recent(self, cache):
        # Set 0 blocks in a 2-way cache: 0x000, 0x040, 0x080 all map to set 0.
        cache.access(0x000)
        cache.access(0x040)
        result = cache.access(0x080)
        assert result.evicted_block == 0x000
        assert not cache.contains(0x000)
        assert cache.contains(0x040)
        assert cache.contains(0x080)

    def test_touch_refreshes_recency(self, cache):
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # refresh 0x000; 0x040 becomes LRU
        result = cache.access(0x080)
        assert result.evicted_block == 0x040
        assert cache.contains(0x000)

    def test_no_eviction_until_set_full(self, cache):
        assert cache.access(0x000).evicted_block is None
        assert cache.access(0x040).evicted_block is None
        assert cache.stats.evictions == 0

    def test_sets_are_independent(self, cache):
        cache.access(0x000)  # set 0
        cache.access(0x010)  # set 1
        cache.access(0x040)  # set 0
        cache.access(0x080)  # set 0 -> evicts from set 0 only
        assert cache.contains(0x010)

    def test_set_contents_mru_first(self, cache):
        cache.access(0x000)
        cache.access(0x040)
        assert cache.set_contents(0) == (0x040, 0x000)
        cache.access(0x000)
        assert cache.set_contents(0) == (0x000, 0x040)

    def test_set_contents_bad_index(self, cache):
        with pytest.raises(IndexError):
            cache.set_contents(99)


class TestMaintenance:
    def test_invalidate_clears_contents_keeps_stats(self, cache):
        cache.access(0x000)
        cache.invalidate()
        assert not cache.contains(0x000)
        assert cache.stats.misses == 1
        assert cache.occupancy() == 0

    def test_invalidate_block(self, cache):
        cache.access(0x000)
        assert cache.invalidate_block(0x004)  # same block
        assert not cache.contains(0x000)
        assert not cache.invalidate_block(0x000)  # already gone

    def test_occupancy_and_resident_blocks(self, cache):
        cache.access(0x000)
        cache.access(0x010)
        assert cache.occupancy() == 2
        assert cache.resident_blocks() == {0x000, 0x010}

    def test_touch_all_returns_total_cycles(self, cache):
        cycles = cache.touch_all([0x000, 0x000, 0x010])
        assert cycles == 20 + 0 + 20

    def test_stats_reset(self, cache):
        cache.access(0x000)
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.miss_rate == 0.0

    def test_snapshot_is_immutable_copy(self, cache):
        cache.access(0x000)
        snap = cache.snapshot()
        cache.access(0x040)
        assert snap[0] == (0x000,)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@st.composite
def access_sequences(draw):
    config = CacheConfig(
        num_sets=draw(st.sampled_from([2, 4, 8])),
        ways=draw(st.integers(min_value=1, max_value=4)),
        line_size=16,
        miss_penalty=20,
    )
    addresses = draw(
        st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=1, max_size=120)
    )
    return config, addresses


@given(access_sequences())
@settings(max_examples=60)
def test_occupancy_never_exceeds_capacity(case):
    config, addresses = case
    cache = CacheState(config)
    for address in addresses:
        cache.access(address)
        assert cache.occupancy() <= config.total_lines
        for index in range(config.num_sets):
            assert len(cache.set_contents(index)) <= config.ways


@given(access_sequences())
@settings(max_examples=60)
def test_most_recent_block_always_resident(case):
    config, addresses = case
    cache = CacheState(config)
    for address in addresses:
        cache.access(address)
        assert cache.contains(address)
        assert cache.set_contents(config.index(address))[0] == config.block(address)


@given(access_sequences())
@settings(max_examples=60)
def test_lru_reuse_distance_rule(case):
    """A re-reference hits iff < `ways` distinct same-set blocks intervened."""
    config, addresses = case
    cache = CacheState(config)
    history: list[int] = []
    for address in addresses:
        block = config.block(address)
        expected_hit = None
        if block in history:
            since = history[history.index(block) + 1 :]
            # history is kept most-recent-last; find the LAST occurrence.
            last = len(history) - 1 - history[::-1].index(block)
            since = history[last + 1 :]
            distinct_same_set = {
                b for b in since if config.index(b) == config.index(block)
            }
            expected_hit = len(distinct_same_set) < config.ways
        else:
            expected_hit = False
        result = cache.access(address)
        assert result.hit == expected_hit, (hex(block), history)
        history.append(block)


@given(access_sequences())
@settings(max_examples=60)
def test_stats_consistency(case):
    config, addresses = case
    cache = CacheState(config)
    total_cycles = cache.touch_all(addresses)
    assert cache.stats.accesses == len(addresses)
    assert total_cycles == cache.stats.misses * config.miss_penalty
    assert 0.0 <= cache.stats.miss_rate <= 1.0


@given(access_sequences())
@settings(max_examples=40)
def test_cold_start_dominates_warm_start_for_lru(case):
    """Starting from an empty cache never yields fewer misses than any
    warm start — the property that makes cold-cache WCET measurement sound
    (see repro.analysis.wcet)."""
    config, addresses = case
    cold = CacheState(config)
    warm = CacheState(config)
    # Pollute the warm cache with unrelated blocks.
    for address in range(0, config.size_bytes * 2, config.line_size):
        warm.access(0x10000 + address)
    warm.stats.reset()
    cold_cycles = cold.touch_all(addresses)
    warm_cycles = warm.touch_all(addresses)
    assert warm_cycles <= cold_cycles
