"""Unit tests for memory-trace recording and per-node aggregation."""

import pytest

from repro.cache import CacheConfig
from repro.vm.trace import MemRef, NodeRefs, NodeTraceAggregate, TraceRecorder


@pytest.fixture
def config():
    return CacheConfig(num_sets=16, ways=2, line_size=16)


def make_recorder(events):
    recorder = TraceRecorder()
    for address, kind, node in events:
        recorder.record(address, kind, node)
    return recorder


class TestMemRef:
    def test_valid_kinds(self):
        for kind in ("code", "read", "write"):
            MemRef(address=0, kind=kind, node="n")

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="unknown reference kind"):
            MemRef(address=0, kind="fetch", node="n")


class TestRecorder:
    def test_block_addresses(self, config):
        recorder = make_recorder(
            [(0x000, "read", "a"), (0x004, "read", "a"), (0x010, "write", "a")]
        )
        assert recorder.block_addresses(config) == frozenset({0x000, 0x010})

    def test_block_sequence_preserves_order(self, config):
        recorder = make_recorder(
            [(0x010, "read", "a"), (0x000, "read", "a"), (0x013, "read", "a")]
        )
        assert recorder.block_sequence(config) == [0x010, 0x000, 0x010]

    def test_visit_boundaries(self, config):
        """Consecutive same-node references form one visit; a node change
        starts a new visit even for a previously seen node."""
        recorder = make_recorder(
            [
                (0x000, "read", "a"),
                (0x010, "read", "a"),
                (0x020, "read", "b"),
                (0x030, "read", "a"),
            ]
        )
        visits = recorder.node_visit_sequences(config)
        assert visits["a"] == [(0x000, 0x010), (0x030,)]
        assert visits["b"] == [(0x020,)]

    def test_empty_recorder(self, config):
        recorder = TraceRecorder()
        assert recorder.node_visit_sequences(config) == {}
        assert recorder.block_addresses(config) == frozenset()
        assert len(recorder) == 0


class TestNodeRefs:
    def test_deterministic_detection(self):
        same = NodeRefs(label="n", visit_sequences=((0x0, 0x10), (0x0, 0x10)))
        assert same.deterministic
        assert same.representative_sequence() == (0x0, 0x10)
        differ = NodeRefs(label="n", visit_sequences=((0x0,), (0x10,)))
        assert not differ.deterministic
        assert differ.representative_sequence() == ()

    def test_blocks_union(self):
        refs = NodeRefs(label="n", visit_sequences=((0x0,), (0x10, 0x20)))
        assert refs.blocks() == frozenset({0x0, 0x10, 0x20})

    def test_empty_refs(self):
        refs = NodeRefs(label="n", visit_sequences=())
        assert refs.deterministic
        assert refs.blocks() == frozenset()
        assert refs.representative_sequence() == ()


class TestAggregate:
    def test_merges_multiple_recorders(self, config):
        r1 = make_recorder([(0x000, "read", "a")])
        r2 = make_recorder([(0x100, "read", "a"), (0x200, "read", "b")])
        aggregate = NodeTraceAggregate.from_recorders(config, [r1, r2])
        assert aggregate.refs("a").blocks() == frozenset({0x000, 0x100})
        assert aggregate.footprint() == frozenset({0x000, 0x100, 0x200})

    def test_unknown_node_is_empty(self, config):
        aggregate = NodeTraceAggregate.from_recorders(config, [])
        assert aggregate.refs("ghost").blocks() == frozenset()

    def test_per_node_blocks(self, config):
        r = make_recorder([(0x000, "read", "a"), (0x100, "write", "b")])
        aggregate = NodeTraceAggregate.from_recorders(config, [r])
        per_node = aggregate.per_node_blocks()
        assert per_node == {
            "a": frozenset({0x000}),
            "b": frozenset({0x100}),
        }

    def test_footprint_matches_union_of_nodes(self, config):
        r = make_recorder(
            [(0x000, "read", "a"), (0x010, "read", "b"), (0x000, "write", "b")]
        )
        aggregate = NodeTraceAggregate.from_recorders(config, [r])
        union = set()
        for label in ("a", "b"):
            union |= aggregate.refs(label).blocks()
        assert aggregate.footprint() == frozenset(union)
