"""Unit tests for the serve token-bucket quota (pure, fake-clock).

Every assertion here is exact: the bucket arithmetic is a pure function
of the injected clock, which is what lets the daemon promise
*deterministic* 429s given a quota configuration.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError, QuotaExceeded
from repro.serve.quota import QuotaConfig, TokenBuckets


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(capacity=2, refill=1.0, now=100.0):
    clock = FakeClock(now)
    return TokenBuckets(QuotaConfig(capacity, refill), clock=clock), clock


def test_burst_up_to_capacity_then_refused():
    buckets, _ = make(capacity=3)
    for _ in range(3):
        buckets.take("client")
    with pytest.raises(QuotaExceeded):
        buckets.take("client")
    assert buckets.granted == 3
    assert buckets.refused == 1


def test_refill_is_continuous_and_capped():
    buckets, clock = make(capacity=2, refill=2.0)
    buckets.take("c")
    buckets.take("c")
    assert buckets.available("c") == pytest.approx(0.0)
    clock.advance(0.25)  # 0.5 tokens: not enough
    with pytest.raises(QuotaExceeded):
        buckets.take("c")
    clock.advance(0.25)  # exactly 1.0 tokens
    buckets.take("c")
    clock.advance(1000.0)  # refill never exceeds capacity
    assert buckets.available("c") == pytest.approx(2.0)


def test_retry_after_names_the_exact_deficit():
    buckets, clock = make(capacity=1, refill=4.0)
    buckets.take("c")
    clock.advance(0.125)  # 0.5 tokens present
    with pytest.raises(QuotaExceeded) as excinfo:
        buckets.take("c")
    assert excinfo.value.retry_after_seconds == pytest.approx(0.125)
    assert excinfo.value.client == "c"
    clock.advance(excinfo.value.retry_after_seconds)
    buckets.take("c")  # the advertised wait is sufficient, exactly


def test_refund_restores_one_token():
    buckets, _ = make(capacity=2)
    buckets.take("c")
    buckets.take("c")
    buckets.refund("c")
    buckets.take("c")  # works again without any clock movement
    with pytest.raises(QuotaExceeded):
        buckets.take("c")


def test_refund_never_exceeds_capacity():
    buckets, _ = make(capacity=2)
    buckets.refund("c")
    buckets.refund("c")
    assert buckets.available("c") == pytest.approx(2.0)


def test_clients_have_independent_buckets():
    buckets, _ = make(capacity=1)
    buckets.take("a")
    with pytest.raises(QuotaExceeded):
        buckets.take("a")
    buckets.take("b")  # unaffected


def test_capacity_zero_disables_quota():
    buckets, _ = make(capacity=0)
    assert not buckets.enabled
    for _ in range(1000):
        buckets.take("anyone")
    buckets.refund("anyone")
    assert buckets.available("anyone") == float("inf")
    assert buckets.granted == 0  # disabled quota keeps no counts


def test_config_validation():
    with pytest.raises(ConfigError):
        QuotaConfig(capacity=-1)
    with pytest.raises(ConfigError):
        QuotaConfig(capacity=2, refill_per_second=0.0)
    QuotaConfig(capacity=0, refill_per_second=0.0)  # disabled: refill unused


def test_take_is_thread_safe_and_exact():
    """N threads racing one bucket: grants + refusals == attempts and
    grants never exceed capacity (no clock movement)."""
    buckets, _ = make(capacity=16, refill=1.0)
    outcomes: list = []
    barrier = threading.Barrier(8)

    def work() -> None:
        barrier.wait()
        for _ in range(10):
            try:
                buckets.take("shared")
                outcomes.append(True)
            except QuotaExceeded:
                outcomes.append(False)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(outcomes) == 80
    assert sum(outcomes) == 16  # exactly capacity grants
    assert buckets.granted == 16
    assert buckets.refused == 64
