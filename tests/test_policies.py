"""Unit and property tests for the replacement policies (LRU/FIFO/PLRU)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    CIIP,
    POLICY_NAMES,
    CacheConfig,
    CacheState,
    conflict_bound,
)
from repro.cache.policies import FIFOSet, LRUSet, PLRUSet, make_set_policy


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_set_policy("lru", 2), LRUSet)
        assert isinstance(make_set_policy("fifo", 2), FIFOSet)
        assert isinstance(make_set_policy("plru", 2), PLRUSet)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_set_policy("random", 2)

    def test_config_validates_policy(self):
        with pytest.raises(ValueError, match="policy"):
            CacheConfig(num_sets=8, ways=2, line_size=16, policy="mru")

    def test_plru_requires_power_of_two_ways(self):
        with pytest.raises(ValueError, match="power-of-two"):
            CacheConfig(num_sets=8, ways=3, line_size=16, policy="plru")
        with pytest.raises(ValueError, match="power-of-two"):
            PLRUSet(3)


class TestFIFO:
    def test_hit_does_not_refresh(self):
        """The FIFO-defining behaviour: a hit must not save a block."""
        config = CacheConfig(num_sets=1, ways=2, line_size=16, policy="fifo")
        cache = CacheState(config)
        cache.access(0x00)   # inserts A (oldest)
        cache.access(0x10)   # inserts B
        cache.access(0x00)   # hit on A, but A stays oldest
        result = cache.access(0x20)  # inserts C -> evicts A
        assert result.evicted_block == 0x00
        assert not cache.contains(0x00)
        assert cache.contains(0x10)

    def test_lru_would_keep_the_touched_block(self):
        config = CacheConfig(num_sets=1, ways=2, line_size=16, policy="lru")
        cache = CacheState(config)
        cache.access(0x00)
        cache.access(0x10)
        cache.access(0x00)
        result = cache.access(0x20)
        assert result.evicted_block == 0x10  # LRU saves the re-touched A
        assert cache.contains(0x00)


class TestPLRU:
    def test_fills_invalid_slots_first(self):
        plru = PLRUSet(4)
        for block in (1, 2, 3, 4):
            assert plru.insert(block) is None
        assert set(plru.resident()) == {1, 2, 3, 4}

    def test_victim_is_not_most_recent(self):
        plru = PLRUSet(4)
        for block in (1, 2, 3, 4):
            plru.insert(block)
        plru.lookup(1)  # make 1 the most recently touched
        evicted = plru.insert(5)
        assert evicted is not None and evicted != 1

    def test_plru_approximates_lru_for_two_ways(self):
        """With 2 ways, tree PLRU is exactly LRU."""
        config_l = CacheConfig(num_sets=4, ways=2, line_size=16, policy="lru")
        config_p = CacheConfig(num_sets=4, ways=2, line_size=16, policy="plru")
        lru, plru = CacheState(config_l), CacheState(config_p)
        addresses = [0x00, 0x40, 0x00, 0x80, 0x40, 0xC0, 0x00, 0x40, 0x80]
        for address in addresses:
            assert lru.access(address).hit == plru.access(address).hit

    def test_single_way_plru_direct_mapped(self):
        plru = PLRUSet(1)
        assert plru.insert(1) is None
        assert plru.insert(2) == 1
        assert plru.resident() == (2,)

    def test_remove_and_clear(self):
        plru = PLRUSet(2)
        plru.insert(1)
        plru.insert(2)
        assert plru.remove(1)
        assert not plru.remove(1)
        plru.clear()
        assert plru.resident() == ()


@st.composite
def policy_cases(draw):
    policy = draw(st.sampled_from(POLICY_NAMES))
    ways = draw(st.sampled_from([1, 2, 4]))
    config = CacheConfig(
        num_sets=draw(st.sampled_from([2, 4, 8])),
        ways=ways,
        line_size=16,
        miss_penalty=20,
        policy=policy,
    )
    addresses = draw(
        st.lists(st.integers(min_value=0, max_value=0x3FF), min_size=1, max_size=100)
    )
    return config, addresses


@given(case=policy_cases())
@settings(max_examples=80)
def test_capacity_and_residency_invariants_all_policies(case):
    config, addresses = case
    cache = CacheState(config)
    for address in addresses:
        cache.access(address)
        assert cache.contains(address), "just-accessed block must be resident"
        assert cache.occupancy() <= config.total_lines
        for index in range(config.num_sets):
            contents = cache.set_contents(index)
            assert len(contents) <= config.ways
            assert len(set(contents)) == len(contents), "duplicate lines"
            for block in contents:
                assert config.index(block) == index


@given(case=policy_cases())
@settings(max_examples=60)
def test_eviction_accounting_all_policies(case):
    config, addresses = case
    cache = CacheState(config)
    for address in addresses:
        cache.access(address)
    # Every miss inserted one line; lines now resident + lines evicted
    # must equal total misses.
    assert cache.occupancy() + cache.stats.evictions == cache.stats.misses


@given(case=policy_cases(), other=st.lists(
    st.integers(min_value=0, max_value=0x3FF), min_size=0, max_size=60))
@settings(max_examples=60)
def test_conflict_bound_policy_independent(case, other):
    """Equation 2 holds under every policy: the number of A-blocks evicted
    by streaming B never exceeds S(A, B)."""
    config, a_addresses = case
    ca = CIIP.from_addresses(config, a_addresses)
    cb = CIIP.from_addresses(config, other)
    cache = CacheState(config)
    for address in a_addresses:
        cache.access(address)
    resident_before = cache.resident_blocks() & ca.blocks()
    for address in other:
        cache.access(address)
    evicted = resident_before - cache.resident_blocks()
    assert len(evicted) <= conflict_bound(ca, cb)


@given(case=policy_cases())
@settings(max_examples=40)
def test_analysis_pipeline_runs_under_every_policy(case):
    """analyze_task + CRPD bounds work (weak dataflow) for FIFO/PLRU too,
    and measured reloads stay below the Approach-4 bound."""
    from repro.analysis import Approach, CRPDAnalyzer, analyze_task
    from repro.program import ProgramBuilder, SystemLayout
    from repro.vm import Machine

    config, _ = case

    def build(name, words):
        b = ProgramBuilder(name)
        data = b.array("data", words=words)
        with b.loop(2):
            with b.loop(words) as i:
                b.load("v", data, index=i)
        return b.build(), {"data": list(range(words))}

    layout = SystemLayout()
    low_program, low_inputs = build("low", 24)
    high_program, high_inputs = build("high", 12)
    low_layout = layout.place(low_program)
    high_layout = layout.place(high_program)
    low_art = analyze_task(low_layout, {"d": low_inputs}, config)
    high_art = analyze_task(high_layout, {"d": high_inputs}, config)
    crpd = CRPDAnalyzer({"low": low_art, "high": high_art})
    bound = crpd.lines_reloaded("low", "high", Approach.COMBINED)

    cache = CacheState(config)
    machine = Machine(layout=low_layout, cache=cache)
    machine.write_array("data", low_inputs["data"])
    for _ in range(30):
        if machine.halted:
            return
        machine.step()
    resident_before = cache.resident_blocks() & low_art.footprint
    intruder = Machine(layout=high_layout, cache=cache)
    intruder.write_array("data", high_inputs["data"])
    intruder.run()
    evicted = resident_before - cache.resident_blocks()
    reloaded: set[int] = set()
    while not machine.halted:
        before = cache.resident_blocks()
        machine.step()
        reloaded |= (cache.resident_blocks() - before) & evicted
    assert len(reloaded) <= bound
