"""Equivalence of the warm-pool batch engine with the one-at-a-time loop.

``analyze_batch`` promises to be a drop-in replacement for analysing
each sweep point by hand: dedup, the warm worker pool, shipped contexts
and the sub-artifact store must all be *observationally invisible*.
These tests draw 100+ randomized sweep points through the fuzz
generator's :class:`~repro.fuzz.generator.Draw` protocol (the same
primitives the campaign runner uses, so the point space is seeded and
platform-stable) and assert the batch results are byte-identical —
response times, reload-line estimates, soundness verdicts *and* the
degradation-ledger event streams — against a hand-written per-point
reference loop, across jobs∈{1,2} and cold vs warm stores.

The trace-adoption contract rides along: with observability enabled, a
``jobs=2`` batch adopts worker spans in request order, so two identical
batches produce identical span trees.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import analyze_task
from repro.analysis.crpd import ALL_APPROACHES, CRPDAnalyzer
from repro.analysis.store import ArtifactStore
from repro.batch import SweepPoint, analyze_batch, sweep_grid
from repro.cache import CacheConfig
from repro.fuzz.generator import RandomDraw, rng_for
from repro.guard.ledger import DegradationLedger
from repro.obs import observed
from repro.program import SystemLayout
from repro.wcrt.response_time import compute_system_wcrt
from repro.wcrt.task import TaskSpec, TaskSystem

DRAWS = 120

#: Small pools so the 120 draws collapse onto a manageable unique set —
#: exactly the duplicate-heavy shape real sweeps have.
PENALTIES = (10, 20, 40)
GEOMETRIES = ((64, 4, 32), (32, 4, 16))


def draw_point(d) -> SweepPoint:
    """One randomized sweep point through the fuzz Draw primitives."""
    experiment = d.choice(("exp1", "exp2"))
    penalty = d.choice(PENALTIES)
    if d.boolean():
        return SweepPoint(experiment=experiment, miss_penalty=penalty)
    num_sets, ways, line_size = d.choice(GEOMETRIES)
    return SweepPoint(
        experiment=experiment,
        miss_penalty=penalty,
        cache=CacheConfig(
            num_sets=num_sets,
            ways=ways,
            line_size=line_size,
            miss_penalty=penalty,
        ),
    )


@pytest.fixture(scope="module")
def sweep_points() -> list[SweepPoint]:
    draw = RandomDraw(rng_for(20040216, 0))
    return [draw_point(draw) for _ in range(DRAWS)]


def reference_point(point: SweepPoint, store=None) -> tuple:
    """The naive per-point loop ``analyze_batch`` must be equal to:
    place the experiment, analyse every task, estimate every pair,
    run the four WCRT fixpoints — no pool, no batch dedup."""
    from repro.experiments.setup import ALL_SPECS

    spec = {s.key: s for s in ALL_SPECS}[point.experiment]
    workloads = {name: build() for name, build in spec.builders.items()}
    layout = SystemLayout(stride=spec.stride)
    for name in spec.placement_order:
        layout.place(workloads[name].program)
    config = point.config()
    ledger = DegradationLedger()
    artifacts = {
        name: analyze_task(
            layout.layout_of(name),
            workloads[name].scenario_map(),
            config,
            ledger=ledger,
            store=store,
        )
        for name in spec.priority_order
    }
    analyzer = CRPDAnalyzer(
        artifacts, mumbs_mode="paper", ledger=ledger, store=store
    )
    estimates = analyzer.estimate_all_pairs(list(spec.priority_order))
    priorities = spec.priorities()
    system = TaskSystem(
        tasks=[
            TaskSpec(
                name=name,
                wcet=artifacts[name].wcet.cycles,
                period=spec.periods[name],
                priority=priorities[name],
            )
            for name in spec.priority_order
        ]
    )
    wcrt = {}
    schedulable = {}
    for approach in ALL_APPROACHES:
        system_wcrt = compute_system_wcrt(
            system,
            cpre=lambda low, high, _a=approach: analyzer.cpre(low, high, _a),
            context_switch=spec.context_switch_cycles,
            stop_at_deadline=False,
            ledger=ledger,
        )
        wcrt[approach.value] = {
            name: system_wcrt.wcrt(name) for name in spec.priority_order
        }
        schedulable[approach.value] = system_wcrt.schedulable
    return (
        {name: artifacts[name].wcet.cycles for name in spec.priority_order},
        _estimate_rows(estimates),
        wcrt,
        schedulable,
        ledger.soundness,
        tuple(ledger.events),
    )


def _estimate_rows(estimates) -> list[tuple]:
    return [
        (
            e.preempted,
            e.preempting,
            {a.value: e.lines[a] for a in ALL_APPROACHES},
        )
        for e in estimates
    ]


def point_fingerprint(result) -> bytes:
    """Everything a :class:`PointResult` asserts about the system, as
    bytes — timing and store telemetry excluded, they legitimately vary."""
    return pickle.dumps(
        (
            result.wcet,
            _estimate_rows(result.estimates),
            result.wcrt,
            result.schedulable,
            result.soundness,
            result.events,
        )
    )


class TestBatchEquivalence:
    def test_batch_matches_reference_cold_warm_serial_parallel(
        self, sweep_points, tmp_path
    ):
        unique = list(dict.fromkeys(sweep_points))
        assert len(unique) >= 12  # the draw pool really gets exercised
        reference = {
            point: pickle.dumps(reference_point(point)) for point in unique
        }

        store_a = ArtifactStore(directory=tmp_path / "a")
        store_b = ArtifactStore(directory=tmp_path / "b")
        batches = {
            "serial-cold": analyze_batch(sweep_points, jobs=1, store=store_a),
            "jobs2-cold": analyze_batch(sweep_points, jobs=2, store=store_b),
            "serial-warm": analyze_batch(sweep_points, jobs=1, store=store_a),
        }
        for mode, batch in batches.items():
            assert len(batch) == len(sweep_points)
            assert batch.unique_points == len(unique)
            assert batch.deduplicated == len(sweep_points) - len(unique)
            for point, result in zip(sweep_points, batch):
                assert result.point == point
                assert point_fingerprint(result) == reference[point], (
                    f"{mode}: {point.label()} diverged from the "
                    f"one-at-a-time loop"
                )
        # The warm batch really was answered from the store.
        assert batches["serial-warm"].store_hits > 0
        assert (
            batches["serial-warm"].elapsed_seconds
            < batches["serial-cold"].elapsed_seconds
        )

    def test_duplicates_share_the_unique_result(self, sweep_points):
        points = [sweep_points[0], sweep_points[1], sweep_points[0]]
        batch = analyze_batch(points, jobs=1)
        assert batch.deduplicated == 1
        assert batch.results[0] is batch.results[2]
        assert point_fingerprint(batch.results[0]) == point_fingerprint(
            batch.results[2]
        )

    def test_grid_sweep_matches_reference_with_shared_store(self, tmp_path):
        """A geometry grid through one shared store equals per-point
        recomputation — the cross-scenario reuse never changes results."""
        points = sweep_grid(
            experiments=("exp1",),
            penalties=(10, 30),
            geometries=((64, 4, 32), (128, 2, 32)),
        )
        store = ArtifactStore(directory=tmp_path)
        batch = analyze_batch(points, jobs=2, store=store)
        for point, result in zip(points, batch):
            assert point_fingerprint(result) == pickle.dumps(
                reference_point(point)
            )


class TestBatchTraceDeterminism:
    def test_jobs2_adoption_order_is_request_order(self, sweep_points):
        points = sweep_points[:6]
        unique_labels = [p.label() for p in dict.fromkeys(points)]

        def run():
            with observed() as (tracer, metrics):
                analyze_batch(points, jobs=2)
            point_spans = [
                r
                for r in tracer.records
                if r.get("type") == "span" and r["name"] == "batch.point"
            ]
            shape = [
                (r["name"], r["parent"], r["id"], r["attrs"].get("label"))
                for r in tracer.records
            ]
            counters = {
                # Scheduling-dependent telemetry is exempt, as in
                # test_obs.py's fan-out determinism contract.
                name: value
                for name, value in metrics.to_dict()["counters"].items()
                if not name.startswith(("batch.pool.", "kernels.intern."))
            }
            return point_spans, shape, counters

        spans1, shape1, counters1 = run()
        spans2, shape2, counters2 = run()
        # Worker spans are adopted in request order, not completion order.
        assert [s["attrs"]["label"] for s in spans1] == unique_labels
        assert shape1 == shape2
        assert counters1 == counters2
        # Every adopted point span hangs off the batch span.
        batch_span = next(s for s in shape1 if s[0] == "batch.analyze")
        assert {s["parent"] for s in spans1} == {batch_span[2]}
