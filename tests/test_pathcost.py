"""Unit tests for Section VI path analysis (Equation 4) and Approach 4."""

import pytest

from repro.analysis import (
    analyze_task,
    approach4_lines,
    eq3_lines,
    max_path_conflict,
)
from repro.cache import CacheConfig
from repro.program import ProgramBuilder, SystemLayout


@pytest.fixture
def config():
    return CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)


def build_pair(config):
    """A streaming preempted task + a two-path preempting task whose arms
    touch different tables (the Example 5 situation)."""
    layout = SystemLayout()

    low = ProgramBuilder("low")
    data = low.array("data", words=96)
    with low.loop(2):
        with low.loop(96) as i:
            low.load("v", data, index=i)
    low_layout = layout.place(low.build())

    high = ProgramBuilder("high")
    table_a = high.array("table_a", words=48)
    table_b = high.array("table_b", words=48)
    flag = high.scalar("flag")
    high.load("f", flag, index=0)
    with high.if_else("f") as arms:
        with arms.then_case():
            with high.loop(48) as i:
                high.load("v", table_a, index=i)
        with arms.else_case():
            with high.loop(48) as i:
                high.load("v", table_b, index=i)
    high_layout = layout.place(high.build())

    low_art = analyze_task(
        low_layout, {"d": {"data": list(range(96))}}, config
    )
    high_art = analyze_task(
        high_layout,
        {
            "a": {"table_a": list(range(48)), "flag": [1]},
            "b": {"table_b": list(range(48)), "flag": [0]},
        },
        config,
    )
    return low_art, high_art


class TestPathCost:
    def test_costs_computed_per_feasible_path(self, config):
        low, high = build_pair(config)
        result = max_path_conflict(low.mumbs_ciip(), high)
        assert len(result.per_path) == 2
        assert result.lines == result.worst.cost
        assert all(p.cost >= 0 for p in result.per_path)

    def test_path_restriction_tightens_eq3(self, config):
        """Approach 4 < Equation 3: each path sees only one of the tables."""
        low, high = build_pair(config)
        eq3 = eq3_lines(low, high)
        eq4 = approach4_lines(low, high)
        assert eq4 <= eq3
        # Both tables together cover more sets than either path alone; with
        # this geometry the single-path footprint is strictly smaller.
        full_blocks = len(high.footprint)
        per_path_blocks = [p.footprint_blocks for p in
                           max_path_conflict(low.mumbs_ciip(), high).per_path]
        assert max(per_path_blocks) < full_blocks

    def test_single_path_preemptor_equals_eq3(self, config):
        """With one feasible path, Equation 4 degenerates to Equation 3."""
        layout = SystemLayout()
        low = ProgramBuilder("low")
        data = low.array("data", words=64)
        with low.loop(2):
            with low.loop(64) as i:
                low.load("v", data, index=i)
        low_layout = layout.place(low.build())
        high = ProgramBuilder("high")
        table = high.array("table", words=32)
        with high.loop(32) as i:
            high.load("v", table, index=i)
        high_layout = layout.place(high.build())
        low_art = analyze_task(low_layout, {"d": {"data": [0] * 64}}, config)
        high_art = analyze_task(
            high_layout, {"d": {"table": [0] * 32}}, config
        )
        assert approach4_lines(low_art, high_art) == eq3_lines(low_art, high_art)

    def test_per_point_mode_dominates_paper_mode(self, config):
        """per_point maximises over ALL execution points, so it is always
        >= the Definition-4 value — the sound direction (see pathcost)."""
        low, high = build_pair(config)
        paper = approach4_lines(low, high, mumbs_mode="paper")
        per_point = approach4_lines(low, high, mumbs_mode="per_point")
        assert per_point >= paper

    def test_unknown_mode_rejected(self, config):
        low, high = build_pair(config)
        with pytest.raises(ValueError, match="mumbs_mode"):
            approach4_lines(low, high, mumbs_mode="bogus")

    def test_empty_paths_raise(self):
        from repro.analysis.pathcost import PathCostResult

        with pytest.raises(ValueError, match="no feasible paths"):
            PathCostResult(per_path=[]).worst

    def test_worst_path_footprint_dominates_cost(self, config):
        low, high = build_pair(config)
        result = max_path_conflict(low.mumbs_ciip(), high)
        for path in result.per_path:
            assert path.cost <= path.footprint_blocks

    def test_ed_workload_paths_have_different_footprints(self):
        """The real ED workload's Sobel and Cauchy paths differ in blocks."""
        from repro.workloads import build_edge_detection

        config = CacheConfig.scaled_16k()
        workload = build_edge_detection()
        layout = SystemLayout().place(workload.program)
        art = analyze_task(layout, workload.scenario_map(), config)
        per_node = art.per_node_blocks()
        from repro.program.paths import path_footprint

        footprints = [
            path_footprint(profile, per_node) for profile in art.path_profiles
        ]
        assert len(footprints) == 2
        assert footprints[0] != footprints[1]
        # Each path footprint is a strict subset of the task footprint.
        for fp in footprints:
            assert fp < art.footprint
