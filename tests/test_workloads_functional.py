"""Functional correctness of the benchmark kernels against references.

Each workload is a real algorithm implemented in the IR; these tests run
it on the VM and compare the outputs with straightforward Python (or
numpy) reference implementations.
"""

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import SystemLayout
from repro.vm import Machine
from repro.workloads import (
    build_adpcm_coder,
    build_adpcm_decoder,
    build_edge_detection,
    build_idct,
    build_mobile_robot,
    build_ofdm,
    reference_decode,
    reference_encode,
    reference_idct,
)
from repro.workloads.adpcm import reference_pack
from repro.workloads.edge_detection import CAUCHY_KERNEL, SOBEL_GX, SOBEL_GY
from repro.workloads.idct import idct_basis_table


def run_workload(workload, scenario_name):
    layout = SystemLayout().place(workload.program)
    machine = Machine(layout=layout, cache=CacheState(CacheConfig.scaled_16k()))
    scenario = workload.scenario(scenario_name)
    for name, values in scenario.inputs.items():
        machine.write_array(name, values)
    machine.run()
    return machine


class TestEdgeDetection:
    def reference_sobel(self, image, width, height, threshold):
        out = []
        for y in range(height - 2):
            for x in range(width - 2):
                gx = gy = 0
                for ky in range(3):
                    for kx in range(3):
                        p = image[(y + ky) * width + (x + kx)]
                        gx += p * SOBEL_GX[ky * 3 + kx]
                        gy += p * SOBEL_GY[ky * 3 + kx]
                mag = abs(gx) + abs(gy)
                out.append(255 if mag >= threshold else 0)
        return out

    def test_sobel_path_matches_reference(self):
        workload = build_edge_detection(width=8, height=8, threshold=200)
        machine = run_workload(workload, "sobel")
        image = workload.scenario("sobel").inputs["image"]
        expected = self.reference_sobel(image, 8, 8, 200)
        assert machine.read_array("edges") == expected

    def test_cauchy_path_matches_reference(self):
        workload = build_edge_detection(width=8, height=8, threshold=200)
        machine = run_workload(workload, "cauchy")
        scenario = workload.scenario("cauchy")
        image = scenario.inputs["image"]
        lut = scenario.inputs["angle_lut"]
        expected = []
        for y in range(6):
            for x in range(6):
                acc = 0
                for ky in range(3):
                    for kx in range(3):
                        acc += image[(y + ky) * 8 + (x + kx)] * CAUCHY_KERNEL[
                            ky * 3 + kx
                        ]
                acc //= 16
                centre = image[(y + 1) * 8 + (x + 1)]
                resp = abs(centre - acc)
                angle = lut[min(resp >> 3, 31)]
                expected.append(angle if resp >= 50 else 0)
        assert machine.read_array("edges") == expected

    def test_paths_produce_different_outputs(self):
        workload = build_edge_detection(width=8, height=8)
        sobel = run_workload(workload, "sobel").read_array("edges")
        cauchy = run_workload(workload, "cauchy").read_array("edges")
        assert sobel != cauchy

    def test_tiny_image_rejected(self):
        with pytest.raises(ValueError, match="3x3"):
            build_edge_detection(width=2, height=8)


class TestADPCM:
    def test_coder_matches_reference(self):
        workload = build_adpcm_coder(samples=64)
        machine = run_workload(workload, "tone")
        pcm = workload.scenario("tone").inputs["pcm_in"]
        expected = reference_encode(pcm)
        assert machine.read_array("encoded", count=64) == expected
        assert machine.read_array("packed") == reference_pack(expected)

    def test_coder_noise_scenario(self):
        workload = build_adpcm_coder(samples=64)
        machine = run_workload(workload, "noise")
        pcm = workload.scenario("noise").inputs["pcm_in"]
        assert machine.read_array("encoded", count=64) == reference_encode(pcm)

    def test_decoder_matches_reference(self):
        workload = build_adpcm_decoder(codes=64)
        machine = run_workload(workload, "stream_a")
        codes = workload.scenario("stream_a").inputs["encoded_in"]
        assert machine.read_array("pcm_out", count=64) == reference_decode(codes)

    def test_roundtrip_tracks_signal(self):
        """Encode then decode: the output must roughly follow the input."""
        from repro.workloads.signals import pcm_frame

        pcm = pcm_frame(128, seed=5)
        decoded = reference_decode(reference_encode(pcm))
        # ADPCM is lossy; after convergence the error stays bounded.
        tail_error = [abs(a - b) for a, b in zip(pcm[32:], decoded[32:])]
        assert max(tail_error) < 4000

    def test_decoder_upsampling(self):
        workload = build_adpcm_decoder(codes=64)
        machine = run_workload(workload, "stream_a")
        pcm = machine.read_array("pcm_out", count=64)
        up = machine.read_array("upsampled", count=128)
        for i in range(63):
            assert up[2 * i] == pcm[i]
            assert up[2 * i + 1] == (pcm[i] + pcm[i + 1]) >> 1
        assert up[126] == pcm[63]
        assert up[127] == pcm[63]

    def test_all_codes_are_nibbles(self):
        workload = build_adpcm_coder(samples=64)
        machine = run_workload(workload, "tone")
        assert all(0 <= c <= 15 for c in machine.read_array("encoded", count=64))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            build_adpcm_coder(samples=3)  # odd
        with pytest.raises(ValueError):
            build_adpcm_decoder(codes=1)


class TestIDCT:
    @pytest.mark.parametrize("dim", [4, 8])
    def test_matches_reference(self, dim):
        workload = build_idct(num_blocks=1, block_dim=dim)
        machine = run_workload(workload, "sparse")
        coeffs = workload.scenario("sparse").inputs["coeffs"]
        expected = reference_idct(coeffs, dim)
        assert machine.read_array("pixels", count=dim * dim) == expected

    def test_multiple_blocks_independent(self):
        workload = build_idct(num_blocks=2, block_dim=4)
        machine = run_workload(workload, "sparse")
        coeffs = workload.scenario("sparse").inputs["coeffs"]
        pixels = machine.read_array("pixels")
        for block in range(2):
            expected = reference_idct(coeffs[block * 16 : (block + 1) * 16], 4)
            assert pixels[block * 16 : (block + 1) * 16] == expected

    def test_dc_only_block_is_flat(self):
        """A DC-only coefficient block must decode to a constant plane."""
        import math

        dim = 4
        workload = build_idct(num_blocks=1, block_dim=dim)
        layout = SystemLayout().place(workload.program)
        machine = Machine(layout=layout, cache=CacheState(CacheConfig.scaled_4k()))
        machine.write_array("basis", idct_basis_table(dim))
        coeffs = [4096] + [0] * (dim * dim - 1)
        machine.write_array("coeffs", coeffs)
        machine.run()
        pixels = machine.read_array("pixels", count=dim * dim)
        assert len(set(pixels)) == 1
        expected_level = reference_idct(coeffs, dim)[0]
        assert pixels[0] == expected_level

    def test_agrees_with_numpy_idct(self):
        """Cross-check the integer IDCT against scipy-free numpy DCT-III."""
        import numpy as np

        dim = 8
        workload = build_idct(num_blocks=1, block_dim=dim)
        coeffs = workload.scenario("sparse").inputs["coeffs"]
        ours = np.array(reference_idct(coeffs, dim), dtype=float).reshape(dim, dim)
        # Float reference: out = C^T X C with orthonormal DCT basis.
        basis = np.zeros((dim, dim))
        for u in range(dim):
            scale = np.sqrt(1.0 / dim) if u == 0 else np.sqrt(2.0 / dim)
            for x in range(dim):
                basis[u, x] = scale * np.cos((2 * x + 1) * u * np.pi / (2 * dim))
        X = np.array(coeffs, dtype=float).reshape(dim, dim)
        exact = basis.T @ X @ basis
        error = np.abs(ours - exact.T.T)  # same orientation as reference
        assert np.max(np.abs(ours - exact)) < 4.0  # Q12 rounding error only

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_idct(num_blocks=0)
        with pytest.raises(ValueError):
            build_idct(block_dim=1)


class TestOFDM:
    def test_transform_matches_numpy_fft(self):
        """The radix-2 kernel implements a DIT FFT with e^{-i...} twiddles;
        check against numpy's FFT on the QPSK symbol vector."""
        import numpy as np

        workload = build_ofdm(fft_size=32, prefix=8)
        machine = run_workload(workload, "frame")
        scenario = workload.scenario("frame")
        qdata = scenario.inputs["qdata"]
        scramble = scenario.inputs["scramble"]
        symbols = []
        for bits, mask in zip(qdata, scramble):
            two = bits ^ mask
            re = 1024 if (two & 1) == 0 else -1024
            im = 1024 if (two >> 1) == 0 else -1024
            symbols.append(complex(re, im))
        expected = np.fft.fft(np.array(symbols))
        got_re = machine.read_array("work_re")
        got_im = machine.read_array("work_im")
        got = np.array(got_re) + 1j * np.array(got_im)
        # Q12 twiddles over 5 stages: allow ~1% relative error.
        scale = np.max(np.abs(expected)) or 1.0
        assert np.max(np.abs(got - expected)) / scale < 0.02

    def test_cyclic_prefix_structure(self):
        workload = build_ofdm(fft_size=32, prefix=8)
        machine = run_workload(workload, "frame")
        out_re = machine.read_array("out_re")
        window = workload.scenario("frame").inputs["window"]
        # Reconstruct pre-window frame: samples / gains (where gain full).
        work_re = machine.read_array("work_re")
        for p in range(8):
            if window[p] == 4096:
                assert out_re[p] == work_re[32 - 8 + p]
        for n in range(32):
            k = n + 8
            if window[k] == 4096:
                assert out_re[k] == work_re[n]

    def test_window_attenuates_edges(self):
        workload = build_ofdm(fft_size=32, prefix=8)
        gains = workload.scenario("frame").inputs["window"]
        assert gains[0] < 4096
        assert gains[-1] < 4096
        assert max(gains) == 4096

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_ofdm(fft_size=48)
        with pytest.raises(ValueError):
            build_ofdm(fft_size=32, prefix=0)
        with pytest.raises(ValueError):
            build_ofdm(fft_size=32, prefix=64)


class TestMobileRobot:
    def test_actuators_written(self):
        workload = build_mobile_robot(control_iterations=2)
        machine = run_workload(workload, "sweep")
        actuators = machine.read_array("actuators")
        assert any(v != 0 for v in actuators)

    def test_command_clamped(self):
        workload = build_mobile_robot(control_iterations=2)
        machine = run_workload(workload, "sweep")
        gains = workload.scenario("sweep").inputs["gains"]
        clamp = gains[3]
        steering = workload.scenario("sweep").inputs["steering"]
        actuators = machine.read_array("actuators")
        for value, scale in zip(actuators, steering):
            assert abs(value) <= abs(clamp * scale) // 16 + 1

    def test_grid_receives_evidence(self):
        workload = build_mobile_robot(control_iterations=2)
        machine = run_workload(workload, "sweep")
        grid = machine.read_array("grid")
        assert any(v > 0 for v in grid)
        assert all(0 <= v <= 255 for v in grid)

    def test_iterations_scale_cycles(self):
        short = build_mobile_robot(control_iterations=1)
        long = build_mobile_robot(control_iterations=4)
        m_short = run_workload(short, "sweep")
        m_long = run_workload(long, "sweep")
        assert m_long.cycles > 2 * m_short.cycles

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            build_mobile_robot(control_iterations=0)
