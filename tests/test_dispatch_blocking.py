"""Tests for the dispatch-blocking bound on the highest-priority task.

Equation 7 gives the top-priority task a WCRT equal to its WCET, but the
simulator preempts at instruction boundaries and charges a non-
preemptible context switch, so the measured response can exceed the WCET
by a bounded blocking term.  ``dispatch_blocking_bound`` quantifies it.
"""

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import Simulator, TaskBinding
from repro.wcrt import TaskSpec, dispatch_blocking_bound


def make_binding(layout, name, words, reps, spec):
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    out = b.array("out", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
            b.store("v", out, index=i)
    placed = layout.place(b.build())
    return TaskBinding(spec=spec, layout=placed,
                       inputs={"data": list(range(words))})


class TestBoundValue:
    def test_components(self):
        config = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=20)
        # worst base (div: 8) + 2 misses + ccs
        assert dispatch_blocking_bound(config, context_switch=100) == 8 + 40 + 100

    def test_writeback_inflates_bound(self):
        base = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=20)
        wb = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=20,
                         write_back=True, writeback_penalty=15)
        assert dispatch_blocking_bound(wb) == dispatch_blocking_bound(base) + 30

    def test_zero_context_switch(self):
        config = CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=10)
        assert dispatch_blocking_bound(config) == 8 + 20


class TestAgainstSimulation:
    def test_top_task_art_within_wcet_plus_blocking(self):
        """The highest-priority task's measured response never exceeds its
        WCET plus the dispatch-blocking bound."""
        from repro.analysis import analyze_task

        config = CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=20)
        ccs = 200
        layout = SystemLayout()
        high_spec = TaskSpec(name="high", wcet=1, period=5_000, priority=1)
        low_spec = TaskSpec(name="low", wcet=1, period=50_000, priority=2)
        high = make_binding(layout, "high", 8, 12, high_spec)
        low = make_binding(layout, "low", 16, 95, low_spec)
        # Fill in the real WCETs after analysis.
        high_art = analyze_task(high.layout, {"d": high.inputs}, config)
        low_art = analyze_task(low.layout, {"d": low.inputs}, config)
        high = TaskBinding(
            spec=TaskSpec(name="high", wcet=high_art.wcet.cycles,
                          period=5_000, priority=1),
            layout=high.layout, inputs=high.inputs,
        )
        low = TaskBinding(
            spec=TaskSpec(name="low", wcet=low_art.wcet.cycles,
                          period=50_000, priority=2),
            layout=low.layout, inputs=low.inputs,
        )
        simulator = Simulator([high, low], cache=CacheState(config),
                              context_switch_cycles=ccs)
        result = simulator.run(horizon=150_000)
        art = result.actual_response_time("high")
        bound = high.spec.wcet + dispatch_blocking_bound(config, ccs)
        assert art <= bound, (art, bound)
        # And the bound is not vacuous: the top task does exceed its bare
        # WCET when it lands on a busy processor.
        assert art > high.spec.wcet
