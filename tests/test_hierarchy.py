"""Unit tests for the two-level memory hierarchy substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheConfig, CacheState, HierarchyConfig, MemoryHierarchy


def make_hierarchy(l1_penalty=10, l2_penalty=40, l2_line=32):
    return HierarchyConfig(
        l1=CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=l1_penalty),
        l2=CacheConfig(num_sets=64, ways=4, line_size=l2_line, miss_penalty=l2_penalty),
    )


class TestConfig:
    def test_valid(self):
        config = make_hierarchy()
        assert config.worst_case_miss_penalty == 50

    def test_l2_line_multiple_required(self):
        with pytest.raises(ValueError, match="multiple"):
            HierarchyConfig(
                l1=CacheConfig(num_sets=16, ways=2, line_size=32),
                l2=CacheConfig(num_sets=64, ways=4, line_size=16),
            )

    def test_l2_must_not_be_smaller(self):
        with pytest.raises(ValueError, match="at least as large"):
            HierarchyConfig(
                l1=CacheConfig(num_sets=64, ways=4, line_size=16),
                l2=CacheConfig(num_sets=16, ways=1, line_size=16),
            )


class TestLatencies:
    def test_three_latency_classes(self):
        stack = MemoryHierarchy(make_hierarchy())
        cold = stack.access(0x100)
        assert (cold.hit, cold.cycles) == (False, 50)  # miss both levels
        warm = stack.access(0x104)
        assert (warm.hit, warm.cycles) == (True, 0)  # L1 hit
        stack.invalidate_l1()
        l2_hit = stack.access(0x100)
        assert (l2_hit.hit, l2_hit.cycles) == (False, 10)  # L1 miss, L2 hit

    def test_l2_spatial_locality(self):
        """An L2 line covers two L1 lines: the neighbour L1 block hits L2."""
        stack = MemoryHierarchy(make_hierarchy())
        stack.access(0x100)  # fills L2 line [0x100, 0x120)
        result = stack.access(0x110)  # different L1 block, same L2 line
        assert not result.hit
        assert result.cycles == 10  # only the L1 refill from L2

    def test_stats_track_l1_outcomes(self):
        stack = MemoryHierarchy(make_hierarchy())
        stack.access(0x0)
        stack.access(0x0)
        assert stack.stats.hits == 1
        assert stack.stats.misses == 1

    def test_invalidate_clears_both(self):
        stack = MemoryHierarchy(make_hierarchy())
        stack.access(0x0)
        stack.invalidate()
        assert stack.access(0x0).cycles == 50

    def test_contains_any_level(self):
        stack = MemoryHierarchy(make_hierarchy())
        stack.access(0x0)
        stack.invalidate_l1()
        assert stack.contains(0x0)  # still in L2

    def test_resident_blocks_l1_granularity(self):
        stack = MemoryHierarchy(make_hierarchy())
        stack.access(0x100)
        resident = stack.resident_blocks()
        # L2 holds [0x100,0x120): both 16B sub-blocks reported.
        assert 0x100 in resident and 0x110 in resident


class TestVMIntegration:
    def test_machine_runs_on_hierarchy(self):
        from repro.program import ProgramBuilder, SystemLayout
        from repro.vm import run_isolated

        b = ProgramBuilder("p")
        data = b.array("data", words=32)
        with b.loop(2):
            with b.loop(32) as i:
                b.load("v", data, index=i)
        layout = SystemLayout().place(b.build())
        stack = MemoryHierarchy(make_hierarchy())
        machine = run_isolated(layout, stack, inputs={"data": list(range(32))})
        assert machine.halted
        # Second pass hits L1; the first pass paid the memory latency.
        assert stack.stats.hits > 0

    def test_hierarchy_faster_than_flat_memory(self):
        """With an L2, repeated misses to a working set larger than L1 are
        cheaper than paying the full memory latency every time."""
        from repro.program import ProgramBuilder, SystemLayout
        from repro.vm import run_isolated

        def build():
            b = ProgramBuilder("p")
            data = b.array("data", words=512)  # 2KB > L1 (512B)
            with b.loop(4):
                with b.loop(512) as i:
                    b.load("v", data, index=i)
            return SystemLayout().place(b.build())

        hierarchy = make_hierarchy(l1_penalty=10, l2_penalty=40)
        flat = CacheConfig(
            num_sets=16, ways=2, line_size=16, miss_penalty=50
        )  # same L1 geometry, full memory latency on every miss
        stacked = run_isolated(build(), MemoryHierarchy(hierarchy),
                               inputs={"data": [0] * 512})
        flat_run = run_isolated(build(), CacheState(flat),
                                inputs={"data": [0] * 512})
        assert stacked.cycles < flat_run.cycles


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=0xFFF), min_size=1, max_size=150
    )
)
@settings(max_examples=50)
def test_hierarchy_cycles_bracketed(addresses):
    """Total cycles sit between the all-L1-hit and all-miss extremes, and
    equal the sum of per-level miss counts weighted by their penalties."""
    config = make_hierarchy()
    stack = MemoryHierarchy(config)
    total = stack.touch_all(addresses)
    l1_misses = stack.l1.stats.misses
    l2_misses = stack.l2.stats.misses
    expected = (
        l1_misses * config.l1.miss_penalty + l2_misses * config.l2.miss_penalty
    )
    assert total == expected
    assert total <= len(addresses) * config.worst_case_miss_penalty


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=0xFFF), min_size=1, max_size=150
    )
)
@settings(max_examples=50)
def test_l2_misses_never_exceed_l1_misses(addresses):
    stack = MemoryHierarchy(make_hierarchy())
    stack.touch_all(addresses)
    assert stack.l2.stats.accesses == stack.l1.stats.misses
    assert stack.l2.stats.misses <= stack.l1.stats.misses
