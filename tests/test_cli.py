"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_analyze_args(self):
        args = build_parser().parse_args(["analyze", "ed", "--penalty", "30"])
        assert args.workload == "ed"
        assert args.penalty == 30

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--experiment", "2", "--horizon", "100000"]
        )
        assert args.experiment == "2"
        assert args.horizon == 100000

    def test_tables_filter(self):
        args = build_parser().parse_args(["tables", "--only", "table2", "--no-art"])
        assert args.only == ["table2"]
        assert args.no_art


class TestCommands:
    def test_workloads_lists_all_six(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("ofdm", "ed", "mr", "adpcmc", "adpcmd", "idct"):
            assert name in out

    def test_analyze_ed(self, capsys):
        assert main(["analyze", "ed"]) == 0
        out = capsys.readouterr().out
        assert "[wcet]" in out
        assert "SFP-PrS" in out
        assert "sobel" in out and "cauchy" in out

    def test_analyze_reuse_flag(self, capsys):
        assert main(["analyze", "mr", "--reuse"]) == 0
        out = capsys.readouterr().out
        assert "[cache behaviour]" in out

    def test_analyze_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["analyze", "quake"])

    def test_crpd_experiment1(self, capsys):
        assert main(["crpd", "--experiment", "1"]) == 0
        out = capsys.readouterr().out
        assert "OFDM by MR" in out
        assert "App. 4" in out

    def test_simulate_short_horizon(self, capsys):
        assert main(
            ["simulate", "--experiment", "1", "--horizon", "160000",
             "--events", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "ART" in out
        assert "release" in out


class TestGuardedCLI:
    """Budget flags, soundness tagging and typed one-line failures."""

    def test_analyze_reports_exact_soundness(self, capsys):
        assert main(["analyze", "ed"]) == 0
        captured = capsys.readouterr()
        assert "soundness: exact" in captured.out
        assert captured.err == ""

    def test_tiny_path_budget_degrades_not_fails(self, capsys):
        assert main(["--max-paths", "1", "analyze", "ed"]) == 0
        captured = capsys.readouterr()
        assert "soundness: conservative" in captured.out
        assert "repro: degraded [paths:ed] max_paths tripped" in captured.err

    def test_strict_budget_is_a_typed_one_line_failure(self, capsys):
        assert main(["--strict", "--max-paths", "1", "analyze", "ed"]) == 3
        captured = capsys.readouterr()
        err_lines = [line for line in captured.err.splitlines() if line]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("repro: budget error:")

    def test_invalid_budget_value_exits_with_config_code(self, capsys):
        assert main(["--max-paths", "0", "analyze", "ed"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: config error:")

    def test_crpd_table_notes_soundness(self, capsys):
        assert main(["--max-paths", "1", "crpd", "--experiment", "1"]) == 0
        captured = capsys.readouterr()
        assert "soundness: conservative" in captured.out
        assert "crpd:" in captured.err


class TestObservabilityCLI:
    """--trace-out / --metrics-out / obs summarize round-trips."""

    def test_traced_crpd_round_trip(self, tmp_path, capsys):
        import json

        from repro.obs import SPAN_RECORD_KEYS, read_trace

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["--no-cache", "--trace-out", str(trace),
             "--metrics-out", str(metrics), "crpd", "--experiment", "1"]
        ) == 0
        capsys.readouterr()
        records = read_trace(trace)
        names = {r["name"] for r in records}
        assert {"cli.crpd", "experiments.build_context", "crpd.pair"} <= names
        for record in records:
            assert set(record) == SPAN_RECORD_KEYS
        data = json.loads(metrics.read_text())
        assert data["counters"]["crpd.pairs_computed"] == 12

        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cli.crpd" in out
        assert "share %" in out

    def test_trace_out_leaves_obs_disabled_afterwards(self, tmp_path, capsys):
        from repro.obs import STATE

        trace = tmp_path / "trace.jsonl"
        assert main(["--trace-out", str(trace), "workloads"]) == 0
        capsys.readouterr()
        assert STATE.enabled is False
        assert trace.exists()

    def test_strict_failure_preserves_exit_code_and_writes_trace(
        self, tmp_path, capsys
    ):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        assert main(
            ["--strict", "--max-paths", "1", "--trace-out", str(trace),
             "analyze", "ed"]
        ) == 3
        err = capsys.readouterr().err
        assert err.startswith("repro: budget error:")
        # The trace is still exported and names the failure.
        root = next(
            r for r in read_trace(trace) if r["name"] == "cli.analyze"
        )
        assert root["attrs"]["error"] == "PathExplosionError"

    def test_degradations_ride_the_trace_as_span_events(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        assert main(
            ["--no-cache", "--max-paths", "1", "--trace-out", str(trace),
             "analyze", "ed"]
        ) == 0
        capsys.readouterr()
        events = [
            event
            for record in read_trace(trace)
            for event in record.get("events", ())
            if event["name"] == "ledger.degradation"
        ]
        assert any(e["attrs"]["budget"] == "max_paths" for e in events)

    def test_summarize_rejects_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["obs", "summarize", str(tmp_path / "absent.jsonl")])
