"""Fault-injection harness: adversarial inputs for the guarded pipeline.

Factories here fabricate the failure modes the guard layer
(:mod:`repro.guard`) must absorb:

* :func:`make_exploding_program` — a CFG whose feasible-path count grows
  as ``2**branches``, blowing any path-enumeration budget,
* :func:`make_divergent_system` — a task set whose response-time
  recurrence (Eq. 6) never reaches a fixpoint,
* :func:`make_overloaded_system` — utilization > 1 with a *finite*
  fixpoint above the deadline, to pin the deadline-overrun /
  divergence distinction,
* :data:`DEGENERATE_GEOMETRIES` — legal-but-extreme cache shapes the
  analysis must handle without special-casing,
* :data:`INVALID_GEOMETRIES` — cache shapes that must be rejected with a
  typed :class:`~repro.errors.ConfigError`,
* :data:`PICKLE_CORRUPTIONS` — ways an on-disk artifact-cache entry can
  rot (truncation, garbage, an unrelated pickle, an empty file); the
  store must treat each as a miss, delete the entry and count it.

``tests/test_guard.py`` drives the pipeline with these and asserts the
robustness invariant from docs/robustness.md: every run returns either a
sound bound whose ledger names the tripped budget, or a typed
:class:`~repro.errors.ReproError` — never a bare traceback, never a
silently unsound number.
"""

from __future__ import annotations

import pickle

from repro.cache import CacheConfig
from repro.program import ProgramBuilder
from repro.wcrt import TaskSpec, TaskSystem


def make_exploding_program(
    name: str = "bomb", branches: int = 8, words: int = 4
):
    """A chain of *branches* sequential two-way branches: 2**branches paths.

    Each arm touches its own array so distinct paths have distinct memory
    footprints — the worst case for per-path analysis, the point of the
    ``max_paths`` budget.
    """
    b = ProgramBuilder(name)
    flags = b.array("flags", words=branches)
    out = b.array("out", words=branches)
    tables = [
        (b.array(f"then{i}", words=words), b.array(f"else{i}", words=words))
        for i in range(branches)
    ]
    for i, (table_then, table_else) in enumerate(tables):
        b.load("f", flags, index=i)
        with b.if_else("f") as arms:
            with arms.then_case():
                b.load("v", table_then, index=0)
            with arms.else_case():
                b.load("v", table_else, index=0)
        b.store("v", out, index=i)
    return b.build()


def exploding_scenarios(branches: int = 8) -> dict[str, dict[str, list[int]]]:
    """One concrete input steering the exploding program down one path."""
    return {"default": {"flags": [i % 2 for i in range(branches)]}}


def make_divergent_system() -> TaskSystem:
    """U = 1.01; the victim's recurrence gains >= 1 cycle per iteration.

    The hog saturates the processor (C = P), so ``R = 1 + ceil(R/5)*5``
    has no fixpoint: without a deadline stop the iteration climbs until
    the iteration budget runs out.  Every task is individually legal
    (wcet <= deadline) — the fault only exists at the system level.
    """
    return TaskSystem(
        tasks=[
            TaskSpec("hog", wcet=5, period=5, priority=1),
            TaskSpec("victim", wcet=1, period=100, priority=2),
        ]
    )


def make_overloaded_system() -> TaskSystem:
    """U = 1.2 yet the recurrence *converges* — above the deadline.

    ``R = 6 + ceil(R/10)*6`` reaches its fixpoint at 18 > D = 10.  The
    victim misses its deadline but does NOT diverge; tests use this to
    prove deadline overrun and divergence stay distinguishable even when
    utilization exceeds one.
    """
    return TaskSystem(
        tasks=[
            TaskSpec("load", wcet=6, period=10, priority=1),
            TaskSpec("victim", wcet=6, period=10, deadline=10, priority=2),
        ]
    )


#: Legal-but-extreme cache geometries: a single direct-mapped line, a tiny
#: fully-associative cache, and a single-set direct-mapped column.  The
#: analysis must produce sound bounds on all of them with no special cases.
DEGENERATE_GEOMETRIES: tuple[CacheConfig, ...] = (
    CacheConfig(num_sets=1, ways=1, line_size=16, miss_penalty=20),
    CacheConfig(num_sets=1, ways=4, line_size=16, miss_penalty=20),
    CacheConfig(num_sets=64, ways=1, line_size=4, miss_penalty=20),
)

#: Constructor kwargs that must raise ConfigError (and hence ValueError).
INVALID_GEOMETRIES: tuple[dict, ...] = (
    dict(num_sets=3, ways=2, line_size=16, miss_penalty=20),
    dict(num_sets=8, ways=2, line_size=12, miss_penalty=20),
    dict(num_sets=8, ways=0, line_size=16, miss_penalty=20),
    dict(num_sets=8, ways=2, line_size=16, miss_penalty=-1),
)

#: name -> transform(valid pickle bytes) -> corrupted bytes.  Each models
#: a distinct on-disk failure: a write cut short mid-stream, random bit
#: rot, a file some other program wrote into the cache directory, and a
#: zero-length file left by a full disk.
PICKLE_CORRUPTIONS: dict = {
    "truncated": lambda payload: payload[: max(1, len(payload) // 2)],
    "garbage": lambda payload: b"\x00rotten" + payload[::-3],
    "foreign_pickle": lambda payload: pickle.dumps({"not": "an artifact"}),
    "empty": lambda payload: b"",
}
