"""Unit and property tests for the WCRT iteration (Equations 6 and 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wcrt import (
    TaskSpec,
    TaskSystem,
    compute_system_wcrt,
    compute_task_wcrt,
    utilization_bound_test,
    zero_cpre,
)


def classic_system():
    """A textbook RTA example with hand-checkable fixpoints."""
    return TaskSystem(
        tasks=[
            TaskSpec(name="t1", wcet=1, period=4, priority=1),
            TaskSpec(name="t2", wcet=2, period=6, priority=2),
            TaskSpec(name="t3", wcet=3, period=13, priority=3),
        ]
    )


class TestEquation6:
    def test_highest_priority_wcrt_is_wcet(self):
        result = compute_task_wcrt(classic_system(), "t1")
        assert result.wcrt == 1
        assert result.converged

    def test_textbook_fixpoints(self):
        """R2 = 2 + ceil(R2/4)*1 -> 3; R3 = 3 + ceil(R3/4) + 2*ceil(R3/6)."""
        system = classic_system()
        assert compute_task_wcrt(system, "t2").wcrt == 3
        # R3: 3 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+4=9 -> 3+3+4=10 -> 3+3+4=10.
        assert compute_task_wcrt(system, "t3").wcrt == 10

    def test_system_wcrt_covers_all_tasks(self):
        results = compute_system_wcrt(classic_system())
        assert set(results.results) == {"t1", "t2", "t3"}
        assert results.schedulable
        assert results.unschedulable_tasks() == []

    def test_unschedulable_detected(self):
        system = TaskSystem(
            tasks=[
                TaskSpec(name="hog", wcet=9, period=10, priority=1),
                TaskSpec(name="victim", wcet=5, period=20, priority=2),
            ]
        )
        results = compute_system_wcrt(system)
        assert not results.schedulable
        assert results.unschedulable_tasks() == ["victim"]
        assert not results.results["victim"].schedulable

    def test_iteration_history_monotone(self):
        result = compute_task_wcrt(classic_system(), "t3")
        assert result.iterations == sorted(result.iterations)
        assert result.iterations[0] == 3
        assert result.iterations[-1] == result.wcrt


class TestEquation7:
    def test_cpre_increases_wcrt(self):
        system = classic_system()
        base = compute_task_wcrt(system, "t3").wcrt
        with_crpd = compute_task_wcrt(
            system, "t3", cpre=lambda low, high: 1
        ).wcrt
        assert with_crpd > base

    def test_context_switch_charged_twice(self):
        """Each preemption window charges Cj + Cpre + 2*Ccs (Eq. 7)."""
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=10, period=100, priority=1),
                TaskSpec(name="low", wcet=10, period=1000, priority=2),
            ]
        )
        base = compute_task_wcrt(system, "low").wcrt
        with_ccs = compute_task_wcrt(system, "low", context_switch=5).wcrt
        # One preemption window: 10 + (10 + 0 + 2*5) = 30 vs 20.
        assert base == 20
        assert with_ccs == 30

    def test_cpre_applies_per_preempting_task(self):
        calls = []

        def tracking_cpre(low, high):
            calls.append((low, high))
            return 0

        compute_task_wcrt(classic_system(), "t3", cpre=tracking_cpre)
        assert ("t3", "t1") in calls
        assert ("t3", "t2") in calls
        assert all(low == "t3" for low, _ in calls)

    def test_stop_at_deadline_vs_full_fixpoint(self):
        """With stop_at_deadline=False the iteration continues to the true
        fixpoint past the deadline (paper Tables III/V behaviour)."""
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=40, period=100, priority=1),
                TaskSpec(name="low", wcet=30, period=200, priority=2),
            ]
        )
        big_cpre = lambda low, high: 50  # noqa: E731
        early = compute_task_wcrt(system, "low", cpre=big_cpre)
        full = compute_task_wcrt(
            system, "low", cpre=big_cpre, stop_at_deadline=False
        )
        assert not early.schedulable
        assert full.wcrt >= early.wcrt

    def test_divergent_iteration_capped(self):
        """Utilization > 1 with CRPD: iteration hits max_iterations."""
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=60, period=100, priority=1),
                TaskSpec(name="low", wcet=50, period=400, priority=2),
            ]
        )
        result = compute_task_wcrt(
            system,
            "low",
            cpre=lambda low, high: 60,
            stop_at_deadline=False,
            max_iterations=50,
        )
        assert not result.converged
        assert not result.schedulable


class TestUtilizationBound:
    def test_liu_layland_bound(self):
        light = TaskSystem(
            tasks=[
                TaskSpec(name="a", wcet=1, period=10, priority=1),
                TaskSpec(name="b", wcet=1, period=10**2, priority=2),
            ]
        )
        assert utilization_bound_test(light)
        # The classic system's utilisation (0.814) exceeds the n=3 bound
        # (0.7798) even though the exact RTA proves it schedulable.
        assert not utilization_bound_test(classic_system())
        assert compute_system_wcrt(classic_system()).schedulable
        heavy = TaskSystem(
            tasks=[
                TaskSpec(name="a", wcet=5, period=10, priority=1),
                TaskSpec(name="b", wcet=5, period=11, priority=2),
            ]
        )
        assert not utilization_bound_test(heavy)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@st.composite
def two_task_systems(draw):
    high_wcet = draw(st.integers(min_value=1, max_value=50))
    high_period = draw(st.integers(min_value=high_wcet * 2, max_value=500))
    low_wcet = draw(st.integers(min_value=1, max_value=50))
    low_period = draw(st.integers(min_value=max(low_wcet, high_period), max_value=5000))
    return TaskSystem(
        tasks=[
            TaskSpec(name="high", wcet=high_wcet, period=high_period, priority=1),
            TaskSpec(name="low", wcet=low_wcet, period=low_period, priority=2),
        ]
    )


@given(system=two_task_systems(), cpre_cost=st.integers(min_value=0, max_value=30))
@settings(max_examples=80)
def test_wcrt_monotone_in_cpre(system, cpre_cost):
    base = compute_task_wcrt(system, "low", stop_at_deadline=False).wcrt
    inflated = compute_task_wcrt(
        system, "low", cpre=lambda l, h: cpre_cost, stop_at_deadline=False
    ).wcrt
    assert inflated >= base


@given(system=two_task_systems())
@settings(max_examples=80)
def test_wcrt_at_least_wcet_and_contains_interference(system):
    result = compute_task_wcrt(system, "low", stop_at_deadline=False)
    low = system.task("low")
    high = system.task("high")
    assert result.wcrt >= low.wcet
    if result.converged:
        # The fixpoint satisfies Eq. 6 exactly.
        from math import ceil

        expected = low.wcet + ceil(result.wcrt / high.period) * high.wcet
        assert result.wcrt == expected


@given(system=two_task_systems(), ccs=st.integers(min_value=0, max_value=20))
@settings(max_examples=60)
def test_wcrt_monotone_in_context_switch(system, ccs):
    base = compute_task_wcrt(system, "low", stop_at_deadline=False).wcrt
    inflated = compute_task_wcrt(
        system, "low", context_switch=ccs, stop_at_deadline=False
    ).wcrt
    assert inflated >= base
