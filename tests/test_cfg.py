"""Unit tests for the control-flow graph representation."""

import pytest

from repro.program import (
    BasicBlock,
    Branch,
    CFGError,
    Const,
    ControlFlowGraph,
    Halt,
    Jump,
)


def diamond_cfg():
    """entry -> (left | right) -> join -> halt."""
    cfg = ControlFlowGraph(name="diamond", entry="entry")
    cfg.add_block(
        BasicBlock("entry", [Const("c", 1)], Branch("c", "left", "right"))
    )
    cfg.add_block(BasicBlock("left", [], Jump("join")))
    cfg.add_block(BasicBlock("right", [], Jump("join")))
    cfg.add_block(BasicBlock("join", [], Halt()))
    return cfg


def loop_cfg():
    """entry -> head <-> body; head -> exit."""
    cfg = ControlFlowGraph(name="loop", entry="entry")
    cfg.add_block(BasicBlock("entry", [Const("i", 0)], Jump("head")))
    cfg.add_block(BasicBlock("head", [], Branch("i", "body", "exit")))
    cfg.add_block(BasicBlock("body", [], Jump("head")))
    cfg.add_block(BasicBlock("exit", [], Halt()))
    return cfg


class TestStructure:
    def test_successors(self):
        cfg = diamond_cfg()
        assert cfg.successors("entry") == ("left", "right")
        assert cfg.successors("left") == ("join",)
        assert cfg.successors("join") == ()

    def test_predecessors(self):
        cfg = diamond_cfg()
        assert set(cfg.predecessors("join")) == {"left", "right"}
        assert cfg.predecessors("entry") == ()

    def test_predecessor_map_matches_predecessors(self):
        cfg = diamond_cfg()
        pmap = cfg.predecessor_map()
        for label in cfg.labels():
            assert set(pmap[label]) == set(cfg.predecessors(label))

    def test_exit_labels(self):
        assert diamond_cfg().exit_labels() == ("join",)

    def test_duplicate_label_rejected(self):
        cfg = ControlFlowGraph(name="x", entry="a")
        cfg.add_block(BasicBlock("a", [], Halt()))
        with pytest.raises(CFGError, match="duplicate"):
            cfg.add_block(BasicBlock("a", [], Halt()))

    def test_unknown_block_lookup(self):
        with pytest.raises(CFGError, match="no block"):
            diamond_cfg().block("nope")

    def test_size_instructions_counts_terminator(self):
        block = BasicBlock("b", [Const("x", 1), Const("y", 2)], Halt())
        assert block.size_instructions == 3

    def test_total_instructions(self):
        assert diamond_cfg().total_instructions == 2 + 1 + 1 + 1


class TestValidation:
    def test_valid_graphs_pass(self):
        diamond_cfg().validate()
        loop_cfg().validate()

    def test_missing_entry(self):
        cfg = ControlFlowGraph(name="x", entry="missing")
        cfg.add_block(BasicBlock("a", [], Halt()))
        with pytest.raises(CFGError, match="entry"):
            cfg.validate()

    def test_missing_terminator(self):
        cfg = ControlFlowGraph(name="x", entry="a")
        cfg.add_block(BasicBlock("a", []))
        with pytest.raises(CFGError, match="no terminator"):
            cfg.validate()

    def test_dangling_target(self):
        cfg = ControlFlowGraph(name="x", entry="a")
        cfg.add_block(BasicBlock("a", [], Jump("ghost")))
        with pytest.raises(CFGError, match="unknown block"):
            cfg.validate()

    def test_unreachable_block(self):
        cfg = ControlFlowGraph(name="x", entry="a")
        cfg.add_block(BasicBlock("a", [], Halt()))
        cfg.add_block(BasicBlock("island", [], Halt()))
        with pytest.raises(CFGError, match="unreachable"):
            cfg.validate()

    def test_no_halt(self):
        cfg = ControlFlowGraph(name="x", entry="a")
        cfg.add_block(BasicBlock("a", [], Jump("b")))
        cfg.add_block(BasicBlock("b", [], Jump("a")))
        with pytest.raises(CFGError, match="no Halt"):
            cfg.validate()


class TestTraversal:
    def test_reachable_from(self):
        cfg = diamond_cfg()
        assert cfg.reachable_from("entry") == {"entry", "left", "right", "join"}
        assert cfg.reachable_from("left") == {"left", "join"}

    def test_back_edges_on_loop(self):
        assert loop_cfg().back_edges() == {("body", "head")}

    def test_back_edges_on_dag(self):
        assert diamond_cfg().back_edges() == set()

    def test_is_acyclic(self):
        assert diamond_cfg().is_acyclic()
        assert not loop_cfg().is_acyclic()

    def test_topological_order_diamond(self):
        order = diamond_cfg().topological_order()
        assert order.index("entry") < order.index("left")
        assert order.index("entry") < order.index("right")
        assert order.index("left") < order.index("join")
        assert order.index("right") < order.index("join")

    def test_topological_order_rejects_cycles(self):
        with pytest.raises(CFGError, match="cycles"):
            loop_cfg().topological_order()

    def test_str_rendering(self):
        text = str(diamond_cfg())
        assert "cfg diamond" in text
        assert "entry:" in text
        assert "halt" in text
