"""Request-scoped observability: ScopedTracer/ScopedMetrics routing.

These facades are installed *as* the process-wide ``STATE.tracer`` /
``STATE.metrics`` by the serve daemon; instrumented call sites keep
reading the singleton while each worker thread's pushed override
receives exactly its own request's spans and counters.  The properties
pinned here: fallback routing with an empty stack, per-thread isolation
of overrides, stack (LIFO) semantics, span-binds-tracer-at-creation,
and exact per-request attribution of shared-store traffic — the
mechanism behind the ``store`` field of every serve envelope.
"""

from __future__ import annotations

import threading

from repro.obs import (
    STATE,
    Metrics,
    ScopedMetrics,
    ScopedTracer,
    Tracer,
    install,
    scope_pair,
    uninstall,
)


def test_tracer_falls_back_with_empty_stack():
    fallback = Tracer()
    scoped = ScopedTracer(fallback)
    assert scoped.current() is fallback
    with scoped.span("work", step=1):
        pass
    assert [record["name"] for record in fallback.records] == ["work"]


def test_tracer_override_routes_and_pops():
    fallback = Tracer()
    override = Tracer()
    scoped = ScopedTracer(fallback)
    scoped.push(override)
    with scoped.span("scoped-work"):
        pass
    assert scoped.pop() is override
    with scoped.span("server-work"):
        pass
    assert [r["name"] for r in override.records] == ["scoped-work"]
    assert [r["name"] for r in fallback.records] == ["server-work"]


def test_tracer_stack_is_lifo():
    scoped = ScopedTracer(Tracer())
    inner, outer = Tracer(), Tracer()
    scoped.push(outer)
    scoped.push(inner)
    scoped.event("deep")
    scoped.pop()
    scoped.event("shallow")
    scoped.pop()
    assert [r["name"] for r in inner.records] == ["deep"]
    assert [r["name"] for r in outer.records] == ["shallow"]


def test_span_binds_tracer_at_creation():
    """A span opened under an override records there even if it closes
    after the pop — scopes cannot leak spans into the fallback."""
    fallback = Tracer()
    override = Tracer()
    scoped = ScopedTracer(fallback)
    scoped.push(override)
    span = scoped.span("crosses-the-pop").__enter__()
    scoped.pop()
    span.__exit__(None, None, None)
    assert [r["name"] for r in override.records] == ["crosses-the-pop"]
    assert fallback.records == []


def test_tracer_overrides_are_thread_local():
    scoped = ScopedTracer(Tracer())
    per_thread = {name: Tracer() for name in ("a", "b")}
    barrier = threading.Barrier(2)

    def work(name: str) -> None:
        scoped.push(per_thread[name])
        barrier.wait()  # both overrides active simultaneously
        for index in range(3):
            scoped.event(f"{name}-{index}")
        scoped.pop()

    threads = [
        threading.Thread(target=work, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for name, tracer in per_thread.items():
        assert [r["name"] for r in tracer.records] == [
            f"{name}-0", f"{name}-1", f"{name}-2"
        ]
    assert scoped.fallback.records == []


def test_metrics_override_isolation_across_threads():
    scoped = ScopedMetrics(Metrics())
    per_thread = {name: Metrics() for name in ("a", "b")}
    barrier = threading.Barrier(2)

    def work(name: str, amount: int) -> None:
        scoped.push(per_thread[name])
        barrier.wait()
        for _ in range(amount):
            scoped.counter("work.items").inc()
        scoped.pop()

    threads = [
        threading.Thread(target=work, args=("a", 3)),
        threading.Thread(target=work, args=("b", 5)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert per_thread["a"].to_dict()["counters"]["work.items"] == 3
    assert per_thread["b"].to_dict()["counters"]["work.items"] == 5
    assert "work.items" not in scoped.fallback.to_dict()["counters"]


def test_metrics_fallback_and_merge_roundtrip():
    fallback = Metrics()
    scoped = ScopedMetrics(fallback)
    request = Metrics()
    scoped.push(request)
    scoped.counter("jobs").inc(2)
    snapshot = scoped.to_dict()
    scoped.pop()
    scoped.merge(snapshot)  # no override: merges into the fallback
    assert fallback.to_dict()["counters"]["jobs"] == 2


def test_scope_pair_helper():
    tracer, metrics = scope_pair()
    assert isinstance(tracer, ScopedTracer)
    assert isinstance(metrics, ScopedMetrics)
    tracer.event("ping")
    metrics.counter("pings").inc()
    assert tracer.fallback.records[0]["name"] == "ping"
    assert metrics.fallback.to_dict()["counters"]["pings"] == 1


def test_store_attribution_through_installed_scope(tmp_path):
    """The serve mechanism end to end: a shared store, the scoped pair
    installed as STATE, two threads each see exactly their own traffic."""
    from repro.analysis.store import ArtifactStore

    saved = (STATE.enabled, STATE.tracer, STATE.metrics)
    store = ArtifactStore(directory=tmp_path)
    store.put("warm-key", {"x": 1}, kind="flow")
    scoped_tracer, scoped_metrics = scope_pair()
    install(scoped_tracer, scoped_metrics)
    try:
        views = {}
        barrier = threading.Barrier(2)

        def work(name: str, hits: int, misses: int) -> None:
            metrics = Metrics()
            scoped_metrics.push(metrics)
            barrier.wait()
            for _ in range(hits):
                assert store.get("warm-key", kind="flow") == {"x": 1}
            for index in range(misses):
                assert store.get(f"cold-{name}-{index}", kind="flow") is None
            scoped_metrics.pop()
            views[name] = metrics.to_dict()["counters"]

        threads = [
            threading.Thread(target=work, args=("a", 4, 1)),
            threading.Thread(target=work, args=("b", 2, 3)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        uninstall()
        STATE.enabled, STATE.tracer, STATE.metrics = saved

    assert views["a"]["store.hits"] == 4
    assert views["a"]["store.misses"] == 1
    assert views["b"]["store.hits"] == 2
    assert views["b"]["store.misses"] == 3
    for view in views.values():
        assert view["store.gets"] == view["store.hits"] + view["store.misses"]
        assert view["store.hits.kind.flow"] == view["store.hits"]
    # The store's own (global) counters sum both requests.
    assert store.gets == 10
    assert store.hits == 6
    assert store.misses == 4
