"""Tests for trace persistence and cache-behaviour diagnostics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CacheConfig, CacheState
from repro.vm.trace import TraceRecorder
from repro.vm.traceio import (
    ReuseProfile,
    load_trace,
    merge_traces,
    reuse_profile,
    save_trace,
    set_pressure,
)


def recorder_from(events):
    recorder = TraceRecorder()
    for address, kind, node in events:
        recorder.record(address, kind, node)
    return recorder


@pytest.fixture
def config():
    return CacheConfig(num_sets=8, ways=2, line_size=16)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        recorder = recorder_from(
            [(0x100, "read", "a"), (0x204, "write", "b"), (0x100, "code", "a")]
        )
        path = tmp_path / "trace.txt"
        save_trace(recorder, path)
        loaded = load_trace(path)
        assert [(e.address, e.kind, e.node) for e in loaded.events] == [
            (e.address, e.kind, e.node) for e in recorder.events
        ]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_malformed_line_reported_with_number(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# repro-trace v1\n0x10 read a\ngarbage\n")
        with pytest.raises(ValueError, match=":3"):
            load_trace(path)

    def test_roundtrip_of_real_run(self, tmp_path, config):
        from repro.program import ProgramBuilder, SystemLayout
        from repro.vm import run_isolated

        b = ProgramBuilder("p")
        data = b.array("data", words=16)
        with b.loop(16) as i:
            b.load("v", data, index=i)
        layout = SystemLayout().place(b.build())
        recorder = TraceRecorder()
        run_isolated(layout, CacheState(config), trace=recorder)
        path = tmp_path / "run.txt"
        save_trace(recorder, path)
        loaded = load_trace(path)
        assert loaded.block_addresses(config) == recorder.block_addresses(config)


class TestReuseProfile:
    def test_cold_references_counted(self, config):
        recorder = recorder_from([(0x000, "read", "a"), (0x100, "read", "a")])
        profile = reuse_profile(recorder, config)
        assert profile.cold == 2
        assert profile.histogram == {}

    def test_immediate_reuse_distance_zero(self, config):
        recorder = recorder_from([(0x000, "read", "a"), (0x004, "read", "a")])
        profile = reuse_profile(recorder, config)
        assert profile.cold == 1
        assert profile.histogram == {0: 1}

    def test_intervening_distinct_block_increases_distance(self, config):
        # 0x000 and 0x080 share set 0 in an 8-set cache.
        recorder = recorder_from(
            [(0x000, "read", "a"), (0x080, "read", "a"), (0x000, "read", "a")]
        )
        profile = reuse_profile(recorder, config)
        assert profile.cold == 2  # both blocks' first touches
        assert profile.histogram == {1: 1}  # re-reference past one distinct block

    def test_different_sets_do_not_interfere(self, config):
        recorder = recorder_from(
            [(0x000, "read", "a"), (0x010, "read", "a"), (0x000, "read", "a")]
        )
        profile = reuse_profile(recorder, config)
        assert profile.histogram[0] == 1  # 0x010 is in set 1, distance stays 0

    def test_prediction_matches_real_lru_cache(self, config):
        """The histogram's predicted hits equal a real LRU simulation —
        for every associativity."""
        import random

        rng = random.Random(7)
        addresses = [rng.randrange(0, 0x400) for _ in range(400)]
        recorder = recorder_from([(a, "read", "n") for a in addresses])
        for ways in (1, 2, 4):
            cache_config = CacheConfig(num_sets=8, ways=ways, line_size=16)
            profile = reuse_profile(recorder, cache_config)
            cache = CacheState(cache_config)
            hits = sum(1 for a in addresses if cache.access(a).hit)
            assert profile.predicted_hits(ways) == hits

    def test_miss_rate_bounds(self):
        profile = ReuseProfile(histogram={0: 8, 3: 2}, cold=10)
        assert profile.accesses == 20
        assert profile.predicted_miss_rate(1) == pytest.approx(0.6)
        assert profile.predicted_miss_rate(4) == pytest.approx(0.5)
        assert ReuseProfile(histogram={}, cold=0).predicted_miss_rate(2) == 0.0


class TestSetPressure:
    def test_counts_distinct_blocks_per_set(self, config):
        recorder = recorder_from(
            [
                (0x000, "read", "a"),
                (0x004, "read", "a"),  # same block
                (0x080, "read", "a"),  # same set, new block
                (0x010, "read", "a"),  # set 1
            ]
        )
        pressure = set_pressure(recorder, config)
        assert pressure.per_set == {0: 2, 1: 1}
        assert pressure.max_pressure == 2
        assert pressure.sets_used == 2

    def test_overcommitted_sets(self, config):
        recorder = recorder_from(
            [(0x000 + i * 0x80, "read", "a") for i in range(4)]  # 4 blocks, set 0
        )
        pressure = set_pressure(recorder, config)
        assert pressure.overcommitted_sets() == [0]

    def test_empty_trace(self, config):
        pressure = set_pressure(TraceRecorder(), config)
        assert pressure.max_pressure == 0
        assert pressure.overcommitted_sets() == []


class TestMerge:
    def test_merge_concatenates(self):
        a = recorder_from([(0x0, "read", "a")])
        b = recorder_from([(0x10, "write", "b")])
        merged = merge_traces([a, b])
        assert len(merged) == 2
        assert merged.events[0].address == 0x0
        assert merged.events[1].address == 0x10


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=0x7FF), min_size=0, max_size=200
    ),
    ways=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=40)
def test_reuse_profile_predicts_lru_exactly(addresses, ways):
    config = CacheConfig(num_sets=4, ways=ways, line_size=16)
    recorder = recorder_from([(a, "read", "n") for a in addresses])
    profile = reuse_profile(recorder, config)
    cache = CacheState(config)
    hits = sum(1 for a in addresses if cache.access(a).hit)
    assert profile.predicted_hits(ways) == hits
    assert profile.accesses == len(addresses)
