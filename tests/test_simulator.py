"""Unit tests for the preemptive fixed-priority scheduler simulator."""

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import EventKind, Simulator, TaskBinding
from repro.wcrt import TaskSpec


def make_binding(system_layout, name, words, reps, spec):
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    out = b.array("out", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
            b.store("v", out, index=i)
    layout = system_layout.place(b.build())
    return TaskBinding(spec=spec, layout=layout, inputs={"data": list(range(words))})


@pytest.fixture
def config():
    return CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=10)


def build_simulator(config, specs, ccs=0):
    layout = SystemLayout()
    bindings = [
        make_binding(layout, spec.name, words, reps, spec)
        for spec, words, reps in specs
    ]
    return Simulator(bindings, cache=CacheState(config), context_switch_cycles=ccs)


class TestSingleTask:
    def test_jobs_released_every_period(self, config):
        spec = TaskSpec(name="solo", wcet=5000, period=10_000, priority=1)
        sim = build_simulator(config, [(spec, 8, 2)])
        result = sim.run(horizon=50_000)
        assert len(result.jobs) == 5
        releases = [j.release_time for j in result.jobs]
        assert releases == [0, 10_000, 20_000, 30_000, 40_000]

    def test_response_time_positive_and_consistent(self, config):
        spec = TaskSpec(name="solo", wcet=5000, period=10_000, priority=1)
        sim = build_simulator(config, [(spec, 8, 2)])
        result = sim.run(horizon=30_000)
        for job in result.jobs:
            assert job.response_time > 0
            assert job.completion_time > job.release_time
        # Steady-state responses are cheaper than the cold first job.
        responses = result.response_times("solo")
        assert responses[0] >= responses[-1]

    def test_no_preemption_single_task(self, config):
        spec = TaskSpec(name="solo", wcet=5000, period=10_000, priority=1)
        sim = build_simulator(config, [(spec, 8, 2)])
        result = sim.run(horizon=30_000)
        assert result.preemption_count("solo") == 0
        assert not any(e.kind is EventKind.PREEMPT for e in result.events)

    def test_idle_gaps_recorded(self, config):
        spec = TaskSpec(name="solo", wcet=5000, period=20_000, priority=1)
        sim = build_simulator(config, [(spec, 4, 1)])
        result = sim.run(horizon=60_000)
        assert any(e.kind is EventKind.IDLE for e in result.events)


class TestPreemption:
    def make_two_tasks(self, config, ccs=0, high_period=4_000, low_reps=125):
        # reps sized so real runtimes roughly match the declared WCETs
        # (~10 cycles per streamed element on this cache).
        high = TaskSpec(name="high", wcet=1_000, period=high_period, priority=1)
        low = TaskSpec(name="low", wcet=20_000, period=100_000, priority=2)
        return build_simulator(config, [(high, 4, 25), (low, 16, low_reps)], ccs=ccs)

    def test_high_priority_preempts_low(self, config):
        sim = self.make_two_tasks(config)
        result = sim.run(horizon=100_000)
        assert result.preemption_count("low") > 0
        assert result.preemption_count("high") == 0

    def test_preempted_job_resumes_and_completes(self, config):
        sim = self.make_two_tasks(config)
        result = sim.run(horizon=100_000)
        low_jobs = [j for j in result.jobs if j.task == "low"]
        assert low_jobs, "low job must complete despite preemptions"
        resumes = [e for e in result.events if e.kind is EventKind.RESUME]
        assert resumes

    def test_preemption_extends_low_response(self, config):
        alone_spec = TaskSpec(name="low", wcet=20_000, period=100_000, priority=2)
        alone = build_simulator(config, [(alone_spec, 16, 125)])
        base = alone.run(horizon=100_000).actual_response_time("low")
        contended = self.make_two_tasks(config).run(horizon=100_000)
        assert contended.actual_response_time("low") > base

    def test_context_switch_cost_extends_response(self, config):
        fast = self.make_two_tasks(config, ccs=0).run(horizon=100_000)
        slow = self.make_two_tasks(config, ccs=500).run(horizon=100_000)
        assert slow.actual_response_time("low") > fast.actual_response_time("low")
        switch_events = [
            e for e in slow.events if e.kind is EventKind.CONTEXT_SWITCH
        ]
        assert switch_events

    def test_two_switches_per_preemption_at_most(self, config):
        """Context switches <= 2 * preemptions + job-boundary switches."""
        sim = self.make_two_tasks(config, ccs=100)
        result = sim.run(horizon=100_000)
        switches = sum(
            1 for e in result.events if e.kind is EventKind.CONTEXT_SWITCH
        )
        preemptions = sum(j.preemptions for j in result.jobs)
        job_count = len(result.jobs)
        assert switches <= 2 * preemptions + job_count

    def test_deadline_miss_detected(self, config):
        high = TaskSpec(name="high", wcet=9_000, period=10_000, priority=1)
        low = TaskSpec(name="low", wcet=9_000, period=20_000, priority=2)
        sim = build_simulator(config, [(high, 16, 56), (low, 16, 56)])
        result = sim.run(horizon=60_000)
        assert result.deadline_misses()
        assert any(e.kind is EventKind.DEADLINE_MISS for e in result.events)


class TestCacheInterference:
    def test_shared_cache_slower_than_isolated(self, config):
        """The very effect the paper models: preemptions force reloads."""
        high = TaskSpec(name="high", wcet=2_000, period=6_000, priority=1)
        low = TaskSpec(name="low", wcet=20_000, period=200_000, priority=2)
        contended = build_simulator(config, [(high, 32, 6), (low, 32, 62)])
        result = contended.run(horizon=200_000)
        low_warm_responses = result.response_times("low")
        # Isolated run of the same program for comparison.
        alone = build_simulator(config, [(low, 32, 62)])
        base = alone.run(horizon=200_000).response_times("low")
        interference = low_warm_responses[0] - base[0]
        high_exec = 2_000  # rough high-task demand within low's response
        assert interference > high_exec, (
            "interference must exceed pure computation time: reload misses"
        )

    def test_determinism(self, config):
        high = TaskSpec(name="high", wcet=1_000, period=5_000, priority=1)
        low = TaskSpec(name="low", wcet=10_000, period=50_000, priority=2)
        results = []
        for _ in range(2):
            sim = build_simulator(config, [(high, 8, 12), (low, 16, 62)], ccs=50)
            result = sim.run(horizon=100_000)
            results.append(
                [(j.task, j.release_time, j.completion_time) for j in result.jobs]
            )
        assert results[0] == results[1]


class TestValidation:
    def test_empty_bindings_rejected(self, config):
        with pytest.raises(ValueError, match="no tasks"):
            Simulator([], cache=CacheState(config))

    def test_duplicate_names_rejected(self, config):
        layout = SystemLayout()
        spec1 = TaskSpec(name="t", wcet=100, period=1000, priority=1)
        spec2 = TaskSpec(name="t", wcet=100, period=2000, priority=2)
        b1 = make_binding(layout, "t", 4, 1, spec1)
        b2 = TaskBinding(spec=spec2, layout=b1.layout, inputs={})
        with pytest.raises(ValueError, match="duplicate"):
            Simulator([b1, b2], cache=CacheState(config))

    def test_negative_ccs_rejected(self, config):
        layout = SystemLayout()
        spec = TaskSpec(name="t", wcet=100, period=1000, priority=1)
        binding = make_binding(layout, "t", 4, 1, spec)
        with pytest.raises(ValueError, match="context_switch"):
            Simulator([binding], cache=CacheState(config), context_switch_cycles=-1)

    def test_nonpositive_horizon_rejected(self, config):
        layout = SystemLayout()
        spec = TaskSpec(name="t", wcet=100, period=1000, priority=1)
        binding = make_binding(layout, "t", 4, 1, spec)
        sim = Simulator([binding], cache=CacheState(config))
        with pytest.raises(ValueError, match="horizon"):
            sim.run(horizon=0)

    def test_art_for_unknown_task_raises(self, config):
        spec = TaskSpec(name="solo", wcet=5000, period=10_000, priority=1)
        sim = build_simulator(config, [(spec, 8, 2)])
        result = sim.run(horizon=20_000)
        with pytest.raises(ValueError, match="completed no jobs"):
            result.actual_response_time("ghost")
