"""Equivalence of the fast analysis engine with its naive references.

The performance work (``docs/performance.md``) replaced four slow paths
with fast ones that must be *observationally identical*:

* per-set counter kernels vs frozenset-intersection ``conflict_bound``,
* branch-and-bound Equation-4 search vs full path enumeration,
* artifact-cache hits vs cold analyses (including replayed ledger events),
* heap-based scheduler queues vs the original linear scans.

Each is checked here on 200+ randomized cases plus every built-in
workload.  All randomness is seeded, so failures reproduce exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import analyze_task, max_path_conflict, max_path_conflict_pruned
from repro.analysis.store import ArtifactStore
from repro.cache import CacheConfig, CacheState, CIIP
from repro.cache.ciip import conflict_bound, conflict_bound_naive
from repro.experiments import EXPERIMENT_I_SPEC, EXPERIMENT_II_SPEC, build_context
from repro.guard.budget import AnalysisBudget
from repro.guard.ledger import DegradationLedger
from repro.program import ProgramBuilder, SystemLayout
from repro.sched.simulator import Simulator
from repro.workloads import build_workload, workload_names

KERNEL_CASES = 120
PRUNE_CASES = 60
CACHE_CASES = 20


# ----------------------------------------------------------------------
# Per-set counter kernels vs the frozenset-intersection reference
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    def test_randomized(self):
        rng = random.Random(20040216)
        for case in range(KERNEL_CASES):
            config = CacheConfig(
                num_sets=rng.choice((8, 16, 32, 64)),
                ways=rng.choice((1, 2, 4)),
                line_size=16,
                miss_penalty=20,
            )
            span = config.num_sets * config.line_size * 4
            addresses_a = [rng.randrange(span) for _ in range(rng.randrange(0, 80))]
            addresses_b = [rng.randrange(span) for _ in range(rng.randrange(0, 80))]
            a = CIIP.from_addresses(config, addresses_a)
            b = CIIP.from_addresses(config, addresses_b)
            assert conflict_bound(a, b) == conflict_bound_naive(a, b), (
                f"case {case}: kernel disagrees with naive bound"
            )
            # The bound is symmetric in both implementations.
            assert conflict_bound(b, a) == conflict_bound(a, b)

    def test_workload_footprints(self):
        """Kernel == naive on every built-in workload's real footprint."""
        config = CacheConfig.scaled_8k(miss_penalty=20)
        layout = SystemLayout()
        ciips = []
        for name in workload_names():
            workload = build_workload(name)
            art = analyze_task(
                layout.place(workload.program), workload.scenario_map(), config
            )
            ciips.append(art.footprint_ciip)
            ciips.append(art.useful.mumbs_ciip())
        for a in ciips:
            for b in ciips:
                assert conflict_bound(a, b) == conflict_bound_naive(a, b)


# ----------------------------------------------------------------------
# Branch-and-bound Equation 4 vs full enumeration
# ----------------------------------------------------------------------
def _random_preemptor(rng: random.Random, name: str):
    """A small branchy program plus one scenario exercising it."""
    b = ProgramBuilder(name)
    flags = b.array("flags", words=4)
    tables = [
        b.array(f"t{i}", words=rng.randrange(8, 33))
        for i in range(rng.randrange(2, 5))
    ]
    b.load("f", flags, index=0)

    def touch():
        table = rng.choice(tables)
        with b.loop(rng.randrange(2, 7)) as i:
            b.load("v", table, index=i)

    for _ in range(rng.randrange(1, 4)):  # sequential branch points
        with b.if_else("f") as arms:
            with arms.then_case():
                touch()
            if rng.random() < 0.7:
                with arms.else_case():
                    touch()
    if rng.random() < 0.5:  # a branch under a loop (SFP-PrS collapse)
        with b.loop(rng.randrange(1, 4)):
            with b.if_else("f") as arms:
                with arms.then_case():
                    touch()
                with arms.else_case():
                    touch()
    program = b.build()
    inputs = {"flags": [1, 0, 1, 0]}
    for table in tables:
        inputs[table.name] = list(range(table.words))
    return program, inputs


class TestPruningEquivalence:
    def test_randomized(self):
        rng = random.Random(1049)
        for case in range(PRUNE_CASES):
            config = CacheConfig(
                num_sets=rng.choice((16, 32)),
                ways=rng.choice((1, 2, 4)),
                line_size=16,
                miss_penalty=20,
            )
            program, inputs = _random_preemptor(rng, f"rand{case}")
            layout = SystemLayout().place(program)
            art = analyze_task(layout, {"s": inputs}, config)
            assert art.path_enumeration_complete
            span = config.num_sets * config.line_size * 2
            useful = CIIP.from_addresses(
                config, [rng.randrange(span) for _ in range(rng.randrange(0, 64))]
            )
            naive = max_path_conflict(useful, art).lines
            pruned = max_path_conflict_pruned(useful, art)
            assert pruned.cost == naive, (
                f"case {case}: pruned {pruned.cost} != enumerated {naive}"
            )

    def test_exact_past_tripped_budget(self):
        """B&B recovers the exact bound on a program whose path count
        trips the enumeration budget (the ``--exact-paths`` guarantee)."""
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        b = ProgramBuilder("bomb")
        flags = b.array("flags", words=4)
        tables = [b.array(f"t{i}", words=16) for i in range(4)]
        b.load("f", flags, index=0)
        for branch in range(10):  # 2^10 = 1024 feasible paths
            with b.if_else("f") as arms:
                with arms.then_case():
                    with b.loop(3) as i:
                        b.load("v", tables[branch % 4], index=i)
                with arms.else_case():
                    with b.loop(3) as i:
                        b.load("v", tables[(branch + 1) % 4], index=i)
        program = b.build()
        inputs = {"flags": [1, 0, 1, 0]}
        for table in tables:
            inputs[table.name] = list(range(16))

        layout = SystemLayout().place(program)
        tripped_ledger = DegradationLedger()
        tripped = analyze_task(
            layout,
            {"s": inputs},
            config,
            budget=AnalysisBudget(max_paths=64),
            ledger=tripped_ledger,
        )
        assert not tripped.path_enumeration_complete
        assert tripped_ledger.degraded
        full = analyze_task(layout, {"s": inputs}, config)
        assert full.path_enumeration_complete
        assert len(full.path_profiles) == 1024

        useful = CIIP.from_addresses(config, range(0, 2048, 16))
        exact = max_path_conflict(useful, full).lines
        pruned = max_path_conflict_pruned(useful, tripped)
        assert pruned.cost == exact
        # Pruning must have paid for itself: far fewer than 1024 paths.
        assert pruned.explored_paths < 1024

    def test_experiment_pairs(self):
        """Pruned == enumerated on every real preemption pair."""
        from repro.analysis.crpd import CRPDAnalyzer

        for spec in (EXPERIMENT_I_SPEC, EXPERIMENT_II_SPEC):
            context = build_context(spec)
            order = list(context.priority_order)
            for mode in ("paper", "per_point"):
                exact = CRPDAnalyzer(
                    context.artifacts, mumbs_mode=mode, path_engine="exact"
                )
                naive = CRPDAnalyzer(
                    context.artifacts, mumbs_mode=mode, path_engine="enumerate"
                )
                for low_index in range(1, len(order)):
                    for preempting in order[:low_index]:
                        preempted = order[low_index]
                        a = exact.estimate_pair(preempted, preempting)
                        b = naive.estimate_pair(preempted, preempting)
                        assert a.lines == b.lines, (
                            f"{spec.key}/{mode}: {preempted} by {preempting}"
                        )


# ----------------------------------------------------------------------
# Artifact cache: hits indistinguishable from cold runs
# ----------------------------------------------------------------------
def _artifact_fingerprint(art):
    return (
        art.name,
        art.wcet.cycles,
        dict(art.wcet.per_scenario_cycles),
        art.footprint,
        art.useful.mumbs(),
        art.path_profiles,
        art.path_enumeration_complete,
    )


class TestCacheEquivalence:
    def test_randomized(self, tmp_path):
        from repro.workloads.synthetic import SyntheticTaskSpec, build_synthetic_task

        rng = random.Random(7)
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        for case in range(CACHE_CASES):
            spec = SyntheticTaskSpec(
                name=f"syn{case}",
                stream_words=rng.randrange(4, 48),
                hot_words=rng.randrange(4, 32),
                hot_passes=rng.randrange(1, 3),
                table_words=rng.randrange(4, 16),
                lookups=rng.randrange(1, 16),
                seed=case + 1,
            )
            workload = build_synthetic_task(spec)
            layout = SystemLayout().place(workload.program)
            cold_store = ArtifactStore(directory=tmp_path)
            cold = analyze_task(
                layout, workload.scenario_map(), config, store=cold_store
            )
            # Cold: every sub-artifact lookup misses (the sim bundle is
            # written without a prior lookup, so it never counts here).
            assert cold_store.hits == 0
            assert cold_store.misses_by_kind == {
                "task": 1, "trace": 1, "flow": 1, "paths": 1,
            }
            warm_store = ArtifactStore(directory=tmp_path)  # disk only
            warm = analyze_task(
                layout, workload.scenario_map(), config, store=warm_store
            )
            # Warm from disk: all four persisted sub-artifacts hit; only
            # the memory-only assembly memo misses.
            assert warm_store.hits_by_kind == {
                "trace": 1, "sim": 1, "flow": 1, "paths": 1,
            }, f"case {case}: expected four disk hits"
            assert warm_store.misses_by_kind == {"task": 1}
            assert _artifact_fingerprint(cold) == _artifact_fingerprint(warm)

    def test_ledger_parity_under_tripped_budget(self, tmp_path):
        """A cache hit replays the degradation events a cold run records."""
        workload = build_workload("ed")
        config = CacheConfig.scaled_8k(miss_penalty=20)
        layout = SystemLayout().place(workload.program)
        budget = AnalysisBudget(max_paths=1)

        cold_ledger = DegradationLedger()
        cold = analyze_task(
            layout,
            workload.scenario_map(),
            config,
            budget=budget,
            ledger=cold_ledger,
            store=ArtifactStore(directory=tmp_path),
        )
        assert cold_ledger.degraded and not cold.path_enumeration_complete

        warm_ledger = DegradationLedger()
        warm_store = ArtifactStore(directory=tmp_path)
        warm = analyze_task(
            layout,
            workload.scenario_map(),
            config,
            budget=budget,
            ledger=warm_ledger,
            store=warm_store,
        )
        assert warm_store.hits_by_kind == {
            "trace": 1, "sim": 1, "flow": 1, "paths": 1,
        }
        assert warm_ledger.events == cold_ledger.events
        assert warm_ledger.soundness == cold_ledger.soundness == "conservative"
        assert _artifact_fingerprint(cold) == _artifact_fingerprint(warm)

    def test_budget_is_part_of_the_key(self, tmp_path):
        """Different path budgets never share a *paths* entry — but they
        do share the budget-independent trace/sim/flow sub-artifacts,
        which is exactly the cross-scenario reuse the decomposition
        buys."""
        workload = build_workload("ed")
        config = CacheConfig.scaled_8k(miss_penalty=20)
        layout = SystemLayout().place(workload.program)
        store = ArtifactStore(directory=tmp_path)
        analyze_task(
            layout, workload.scenario_map(), config,
            budget=AnalysisBudget(max_paths=1),
            ledger=DegradationLedger(), store=store,
        )
        full = analyze_task(
            layout, workload.scenario_map(), config, store=store
        )
        # The second run re-enumerates paths (new budget => new key) and
        # re-misses the budget-keyed assembly memo, but replays the
        # simulation sub-artifacts.
        assert store.misses_by_kind == {
            "task": 2, "trace": 1, "flow": 1, "paths": 2,
        }
        assert store.hits_by_kind == {"trace": 1, "sim": 1, "flow": 1}
        assert full.path_enumeration_complete


# ----------------------------------------------------------------------
# Heap scheduler queues vs the linear-scan reference
# ----------------------------------------------------------------------
class TestSchedulerEquivalence:
    @pytest.mark.parametrize("spec", [EXPERIMENT_I_SPEC, EXPERIMENT_II_SPEC])
    def test_identical_schedules(self, spec):
        context = build_context(spec)
        horizon = context.system.hyperperiod // 2
        results = {}
        for impl in ("heap", "scan"):
            simulator = Simulator(
                context.bindings(),
                cache=CacheState(context.config),
                context_switch_cycles=context.spec.context_switch_cycles,
                queue_impl=impl,
            )
            results[impl] = simulator.run(horizon)
        heap, scan = results["heap"], results["scan"]
        assert heap.events == scan.events
        assert heap.jobs == scan.jobs
        assert heap.end_time == scan.end_time
        assert heap.unfinished_jobs == scan.unfinished_jobs
