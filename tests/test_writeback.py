"""Tests for write-back cache support (dirty lines, writeback costs)."""

import pytest

from repro.analysis import ALL_APPROACHES, Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import Simulator, TaskBinding
from repro.vm import run_isolated
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt


def wb_config(**kwargs):
    defaults = dict(
        num_sets=4, ways=2, line_size=16, miss_penalty=20,
        write_back=True, writeback_penalty=15,
    )
    defaults.update(kwargs)
    return CacheConfig(**defaults)


class TestConfig:
    def test_effective_writeback_penalty(self):
        assert wb_config().effective_writeback_penalty == 15
        assert wb_config(writeback_penalty=None).effective_writeback_penalty == 20
        no_wb = CacheConfig(num_sets=4, ways=2, line_size=16)
        assert no_wb.effective_writeback_penalty == 0

    def test_negative_writeback_rejected(self):
        with pytest.raises(ValueError, match="writeback_penalty"):
            wb_config(writeback_penalty=-1)


class TestDirtyTracking:
    def test_store_dirties_line(self):
        cache = CacheState(wb_config())
        cache.access(0x00, write=True)
        assert cache.is_dirty(0x00)
        assert cache.dirty_blocks() == {0x00}

    def test_read_does_not_dirty(self):
        cache = CacheState(wb_config())
        cache.access(0x00)
        assert not cache.is_dirty(0x00)

    def test_write_through_mode_never_dirty(self):
        cache = CacheState(CacheConfig(num_sets=4, ways=2, line_size=16))
        cache.access(0x00, write=True)
        assert not cache.is_dirty(0x00)
        assert cache.dirty_blocks() == set()

    def test_dirty_eviction_charges_writeback(self):
        cache = CacheState(wb_config())
        cache.access(0x00, write=True)  # dirty, set 0
        cache.access(0x40)  # set 0
        result = cache.access(0x80)  # set 0 -> evicts dirty 0x00
        assert result.evicted_block == 0x00
        assert result.cycles == 20 + 15
        assert cache.stats.writebacks == 1

    def test_clean_eviction_costs_nothing_extra(self):
        cache = CacheState(wb_config())
        cache.access(0x00)
        cache.access(0x40)
        result = cache.access(0x80)
        assert result.cycles == 20
        assert cache.stats.writebacks == 0

    def test_reloaded_block_is_clean(self):
        cache = CacheState(wb_config(ways=1))
        cache.access(0x00, write=True)
        cache.access(0x40)  # evicts dirty 0x00 (writeback)
        cache.access(0x00)  # reload as clean
        assert not cache.is_dirty(0x00)
        assert cache.stats.writebacks == 1

    def test_invalidate_discards_dirty(self):
        cache = CacheState(wb_config())
        cache.access(0x00, write=True)
        cache.invalidate()
        assert cache.dirty_blocks() == set()
        assert cache.stats.writebacks == 0

    def test_invalidate_block_clears_dirty_bit(self):
        cache = CacheState(wb_config())
        cache.access(0x00, write=True)
        cache.invalidate_block(0x00)
        assert not cache.is_dirty(0x00)

    def test_stats_reset_clears_writebacks(self):
        cache = CacheState(wb_config())
        cache.access(0x00, write=True)
        cache.access(0x40)
        cache.access(0x80)
        cache.stats.reset()
        assert cache.stats.writebacks == 0


class TestVMWithWriteback:
    def build(self, words=64, reps=2):
        b = ProgramBuilder("wb")
        data = b.array("data", words=words)
        out = b.array("out", words=words)
        with b.loop(reps):
            with b.loop(words) as i:
                b.load("v", data, index=i)
                b.store("v", out, index=i)
        return SystemLayout().place(b.build())

    def test_write_back_can_cost_more_under_conflict(self):
        """With a cache too small for the working set, dirty evictions add
        writeback cycles on top of the misses."""
        layout = self.build()
        through = run_isolated(
            layout,
            CacheState(CacheConfig(num_sets=4, ways=2, line_size=16,
                                   miss_penalty=20)),
            inputs={"data": list(range(64))},
        )
        back = run_isolated(
            self.build(),
            CacheState(wb_config()),
            inputs={"data": list(range(64))},
        )
        assert back.cycles > through.cycles

    def test_writeback_cycle_accounting_exact(self):
        layout = self.build(words=16, reps=1)
        cache = CacheState(wb_config(num_sets=2, ways=1))
        machine = run_isolated(layout, cache, inputs={"data": list(range(16))})
        base_cache = CacheState(
            CacheConfig(num_sets=2, ways=1, line_size=16, miss_penalty=20)
        )
        base = run_isolated(self.build(words=16, reps=1), base_cache,
                            inputs={"data": list(range(16))})
        assert machine.cycles == base.cycles + 15 * cache.stats.writebacks
        assert cache.stats.writebacks > 0


class TestWritebackCRPD:
    def make_pair(self):
        config = CacheConfig(
            num_sets=16, ways=2, line_size=16, miss_penalty=20,
            write_back=True, writeback_penalty=15,
        )
        layout = SystemLayout()

        def build(name, words, reps):
            b = ProgramBuilder(name)
            data = b.array("data", words=words)
            out = b.array("out", words=words)
            with b.loop(reps):
                with b.loop(words) as i:
                    b.load("v", data, index=i)
                    b.store("v", out, index=i)
            return layout.place(b.build()), {"data": list(range(words))}

        low_layout, low_inputs = build("low", 48, 12)
        high_layout, high_inputs = build("high", 24, 1)
        low = analyze_task(low_layout, {"d": low_inputs}, config)
        high = analyze_task(high_layout, {"d": high_inputs}, config)
        return config, (low_layout, low_inputs, low), (high_layout, high_inputs, high)

    def test_cpre_includes_writeback_term(self):
        config, (pl, pi, low), (hl, hi, high) = self.make_pair()
        crpd = CRPDAnalyzer({"low": low, "high": high})
        lines = crpd.lines_reloaded("low", "high", Approach.COMBINED)
        dirty_bound = crpd.lines_reloaded("low", "high", Approach.INTERTASK)
        expected = lines * 20 + dirty_bound * 15
        assert crpd.cpre("low", "high", Approach.COMBINED) == expected

    def test_wcrt_sound_under_writeback(self):
        """ART <= Eq.7 WCRT with the writeback-aware Cpre on a real
        contended system."""
        config, (low_layout, low_inputs, low), (high_layout, high_inputs, high) = (
            self.make_pair()
        )
        crpd = CRPDAnalyzer({"low": low, "high": high})
        # Round periods keep the hyperperiod (and thus the simulation) small.
        high_spec = TaskSpec(name="high", wcet=high.wcet.cycles,
                             period=5_000, priority=1)
        low_spec = TaskSpec(name="low", wcet=low.wcet.cycles,
                            period=50_000, priority=2)
        system = TaskSystem(tasks=[high_spec, low_spec])
        ccs = 100
        wcrt = compute_system_wcrt(
            system,
            cpre=lambda l, h: crpd.cpre(l, h, Approach.COMBINED),
            context_switch=ccs,
        )
        simulator = Simulator(
            [
                TaskBinding(high_spec, high_layout, high_inputs),
                TaskBinding(low_spec, low_layout, low_inputs),
            ],
            cache=CacheState(config),
            context_switch_cycles=ccs,
        )
        result = simulator.run(horizon=2 * system.hyperperiod)
        art = result.actual_response_time("low")
        assert result.preemption_count("low") > 0
        assert art <= wcrt.wcrt("low"), (art, wcrt.wcrt("low"))
