"""The fuzz subsystem's reproducibility and campaign contracts.

Pinned here (and documented in docs/fuzzing.md):

* ``case_from_seed(S, i)`` is a pure function — bit-identical specs on
  every call, round-trippable through the versioned JSON encoding;
* shard ``i/n`` owns indices ``i, i+n, ...`` and the shards partition
  the stream exactly;
* the campaign runner resumes from a corpus directory, counts every
  case exactly once, and turns engine crashes into ``crash`` violations
  instead of dying;
* a seeded smoke window of the full oracle bank stays green (the
  5000-case acceptance run is the nightly CI job; this is the PR-time
  slice of the same stream).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.fuzz.build import build_case, cfg_node_count
from repro.fuzz.generator import case_from_seed
from repro.fuzz.runner import (
    CaseFailure,
    replay_command,
    run_campaign,
    run_one_case,
    shard_indices,
)
from repro.fuzz.oracles import ORACLES, Violation, run_oracles
from repro.fuzz.spec import CacheSpec, SystemSpec, spec_weight


class TestDeterminism:
    def test_case_from_seed_is_pure(self):
        for index in range(5):
            assert case_from_seed(11, index) == case_from_seed(11, index)

    def test_distinct_indices_differ(self):
        specs = [case_from_seed(11, i) for i in range(10)]
        assert len({json.dumps(s.to_json(), sort_keys=True) for s in specs}) > 1

    def test_json_round_trip(self):
        for index in range(8):
            spec = case_from_seed(3, index)
            assert SystemSpec.from_json(spec.to_json()) == spec

    def test_unknown_spec_version_rejected(self):
        payload = case_from_seed(3, 0).to_json()
        payload["version"] = 999
        with pytest.raises(ConfigError, match="version 999"):
            SystemSpec.from_json(payload)

    def test_build_is_deterministic(self):
        spec = case_from_seed(7, 1)
        first, second = build_case(spec), build_case(spec)
        assert [t.artifacts.wcet.cycles for t in first.tasks] == [
            t.artifacts.wcet.cycles for t in second.tasks
        ]
        assert [t.spec for t in first.tasks] == [t.spec for t in second.tasks]
        assert cfg_node_count(spec) > 0 and spec_weight(spec) > 0


class TestSharding:
    def test_shards_partition_the_stream(self):
        cases = 23
        owned = [list(shard_indices(cases, i, 4)) for i in range(4)]
        flat = sorted(index for shard in owned for index in shard)
        assert flat == list(range(cases))

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError):
            shard_indices(10, 4, 4)


class TestRunner:
    def test_smoke_window_is_clean(self):
        """PR-time slice of the acceptance stream: seed 4, first cases."""
        result = run_campaign(seed=4, cases=4)
        assert result.ok and result.ran == 4
        assert result.failures == [] and not result.stopped_early

    def test_corpus_resume_skips_completed_prefix(self, tmp_path):
        first = run_campaign(seed=4, cases=3, corpus_dir=tmp_path)
        assert first.ran == 3 and first.resumed == 0
        second = run_campaign(seed=4, cases=3, corpus_dir=tmp_path)
        assert second.ran == 0 and second.resumed == 3
        extended = run_campaign(seed=4, cases=4, corpus_dir=tmp_path)
        assert extended.ran == 1 and extended.resumed == 3

    def test_crash_becomes_a_violation_not_an_exception(self):
        """Hand-edited corpus entries can carry invalid geometry; the
        campaign reports that as a ``crash`` violation and keeps going."""
        bad = SystemSpec(
            cache=CacheSpec(num_sets=3, ways=2, line_size=16),
            tasks=case_from_seed(4, 0).tasks,
        )
        violations = run_one_case(0, 0, spec=bad)
        assert violations and violations[0].oracle == "crash"
        assert "ConfigError" in violations[0].message

    def test_unknown_oracle_is_a_config_error_not_a_crash(self):
        with pytest.raises(ConfigError, match="unknown fuzz oracle"):
            run_one_case(4, 0, oracle_names=["nope"])

    def test_failure_entry_carries_the_replay_line(self):
        failure = CaseFailure(
            index=17, seed=4, spec=case_from_seed(4, 17),
            violations=[Violation("crash", "boom")],
        )
        payload = failure.to_json()
        assert payload["replay"] == replay_command(4, 17) == (
            "repro fuzz replay --seed 4 --index 17"
        )
        assert SystemSpec.from_json(payload["spec"]) == failure.spec


class TestOracleBank:
    def test_bank_names_are_stable(self):
        """docs/fuzzing.md documents these names; renames must be loud."""
        assert list(ORACLES) == [
            "approach_ordering",
            "kernel_vs_naive",
            "prune_vs_enumerate",
            "wcet_soundness",
            "reload_soundness",
            "heap_vs_scan",
            "art_soundness",
            "store_parity",
            "cmiss_monotonicity",
        ]

    def test_single_oracle_selection(self):
        case = build_case(case_from_seed(4, 0))
        assert run_oracles(case, names=["approach_ordering"]) == []
