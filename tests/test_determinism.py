"""Bit-for-bit determinism of every pipeline stage.

DESIGN.md commits to full reproducibility: no wall-clock, no unseeded
randomness, no ordering dependent on hash randomisation.  These tests
build everything twice and require identical results.
"""

from repro.analysis import Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig
from repro.program import SystemLayout, enumerate_path_profiles
from repro.workloads import build_workload, workload_names


def analyze_all(seed_config):
    config = seed_config
    layout = SystemLayout(stride=0x1C00)
    artifacts = {}
    for name in ("mr", "ed"):
        workload = build_workload(name)
        placed = layout.place(workload.program)
        artifacts[name] = analyze_task(placed, workload.scenario_map(), config)
    return artifacts


class TestWorkloadDeterminism:
    def test_programs_identical_across_builds(self):
        for name in workload_names():
            first = build_workload(name)
            second = build_workload(name)
            assert first.program.cfg.labels() == second.program.cfg.labels()
            for label in first.program.cfg.labels():
                a = first.program.cfg.block(label)
                b = second.program.cfg.block(label)
                assert [str(i) for i in a.instructions] == [
                    str(i) for i in b.instructions
                ]
                assert str(a.terminator) == str(b.terminator)

    def test_scenarios_identical_across_builds(self):
        for name in workload_names():
            first = build_workload(name)
            second = build_workload(name)
            assert first.scenario_map() == second.scenario_map()

    def test_path_profiles_identical(self):
        for name in workload_names():
            first = enumerate_path_profiles(build_workload(name).program)
            second = enumerate_path_profiles(build_workload(name).program)
            assert [(p.counts, p.choices) for p in first] == [
                (p.counts, p.choices) for p in second
            ]


class TestAnalysisDeterminism:
    def test_artifacts_identical(self):
        config = CacheConfig.scaled_8k()
        first = analyze_all(config)
        second = analyze_all(config)
        for name in first:
            assert first[name].wcet.cycles == second[name].wcet.cycles
            assert first[name].footprint == second[name].footprint
            assert first[name].useful.mumbs() == second[name].useful.mumbs()
            assert (
                first[name].useful.lee_reload_bound()
                == second[name].useful.lee_reload_bound()
            )

    def test_crpd_estimates_identical(self):
        config = CacheConfig.scaled_8k()
        results = []
        for _ in range(2):
            artifacts = analyze_all(config)
            crpd = CRPDAnalyzer(artifacts)
            results.append(
                {
                    approach: crpd.lines_reloaded("ed", "mr", approach)
                    for approach in Approach
                }
            )
        assert results[0] == results[1]

    def test_rmb_lmb_solution_identical(self):
        config = CacheConfig.scaled_8k()
        first = analyze_all(config)["ed"].dataflow
        second = analyze_all(config)["ed"].dataflow
        assert first.entry_rmb == second.entry_rmb
        assert first.exit_lmb == second.exit_lmb


class TestSimulationDeterminism:
    def test_experiment_simulation_identical(self, experiment1_context):
        """Two fresh simulators over the same context agree event-for-event."""
        from repro.cache import CacheState
        from repro.sched import Simulator

        runs = []
        for _ in range(2):
            simulator = Simulator(
                experiment1_context.bindings(),
                cache=CacheState(experiment1_context.config),
                context_switch_cycles=1049,
            )
            result = simulator.run(200_000)
            runs.append(
                [(e.time, e.kind, e.task, e.job) for e in result.events]
            )
        assert runs[0] == runs[1]
