"""Hygiene checks on the public API surface.

Every name a package exports in ``__all__`` must be importable, and every
public callable/class must carry a docstring — the deliverable-level
documentation guarantee.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.cache",
    "repro.program",
    "repro.vm",
    "repro.analysis",
    "repro.wcrt",
    "repro.sched",
    "repro.workloads",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package_name}: missing docstrings: {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert (package.__doc__ or "").strip(), f"{package_name} lacks a docstring"


def test_public_dataclass_methods_documented():
    """Spot-check: methods of the headline classes are documented."""
    from repro.analysis import CRPDAnalyzer, TaskArtifacts
    from repro.cache import CacheConfig, CacheState
    from repro.sched import Simulator

    for cls in (CacheConfig, CacheState, CRPDAnalyzer, TaskArtifacts, Simulator):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"


def test_no_module_import_side_effects(capsys):
    """Importing the library must not print or mutate global state."""
    for package_name in PACKAGES:
        importlib.import_module(package_name)
    out = capsys.readouterr()
    assert out.out == ""
    assert out.err == ""
