"""Shared fixtures: small caches, tiny programs and analysed workloads."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.analysis import analyze_task


@pytest.fixture
def tiny_cache_config():
    """A 2-way, 8-set, 16B-line cache: small enough to reason about by hand."""
    return CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=20)


@pytest.fixture
def tiny_cache(tiny_cache_config):
    return CacheState(tiny_cache_config)


@pytest.fixture
def example2_config():
    """The paper's Example 2 cache: 1KB, 4-way, 16B lines, 16 sets."""
    return CacheConfig.example2_1k()


def make_streaming_program(name: str, words: int, reps: int):
    """A loop that streams over `data` into `out`, `reps` times."""
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    out = b.array("out", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
            b.binop("v", "add", "v", 1)
            b.store("v", out, index=i)
    return b.build()


def make_two_path_program(name: str, words: int):
    """A branchy program: flag selects which of two tables is consulted."""
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    table_a = b.array("table_a", words=words)
    table_b = b.array("table_b", words=words)
    out = b.array("out", words=words)
    flag = b.scalar("flag")
    b.load("f", flag, index=0)
    with b.if_else("f") as arms:
        with arms.then_case():
            with b.loop(words) as i:
                b.load("v", data, index=i)
                b.load("t", table_a, index=i)
                b.binop("v", "add", "v", "t")
                b.store("v", out, index=i)
        with arms.else_case():
            with b.loop(words) as i:
                b.load("v", data, index=i)
                b.load("t", table_b, index=i)
                b.binop("v", "mul", "v", "t")
                b.store("v", out, index=i)
    return b.build()


@pytest.fixture
def streaming_program():
    return make_streaming_program("stream", words=24, reps=2)


@pytest.fixture
def two_path_program():
    return make_two_path_program("twopath", words=16)


@pytest.fixture
def analyzed_pair(tiny_cache_config):
    """Two small analysed tasks sharing one layout (high preempts low)."""
    config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
    layout = SystemLayout()
    low = make_streaming_program("low", words=48, reps=2)
    high = make_two_path_program("high", words=16)
    low_layout = layout.place(low)
    high_layout = layout.place(high)
    low_art = analyze_task(
        low_layout, {"default": {"data": list(range(48))}}, config
    )
    high_art = analyze_task(
        high_layout,
        {
            "a": {"data": list(range(16)), "table_a": [2] * 16, "flag": [1]},
            "b": {"data": list(range(16)), "table_b": [3] * 16, "flag": [0]},
        },
        config,
    )
    return {"low": low_art, "high": high_art, "config": config}


# ----------------------------------------------------------------------
# Session-scoped experiment contexts (expensive: build + analyse + ART).
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def experiment1_context():
    from repro.experiments import EXPERIMENT_I_SPEC, build_context

    return build_context(EXPERIMENT_I_SPEC, miss_penalty=20)


@pytest.fixture(scope="session")
def experiment2_context():
    from repro.experiments import EXPERIMENT_II_SPEC, build_context

    return build_context(EXPERIMENT_II_SPEC, miss_penalty=20)
