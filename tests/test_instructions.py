"""Unit tests for the IR instruction set and its evaluation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.program import BinOp, Branch, Const, Halt, Jump, Load, Mov, Store, UnOp
from repro.program.instructions import (
    BASE_CYCLES,
    INSTRUCTION_SIZE,
    evaluate_binop,
    evaluate_unop,
)


class TestValidation:
    def test_const_requires_register_dst(self):
        with pytest.raises(TypeError):
            Const(123, 5)  # type: ignore[arg-type]

    def test_empty_register_name_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            Mov("", "src")

    def test_binop_unknown_op(self):
        with pytest.raises(ValueError, match="unknown binary op"):
            BinOp("d", "pow", "a", "b")

    def test_unop_unknown_op(self):
        with pytest.raises(ValueError, match="unknown unary op"):
            UnOp("d", "sqrt", "a")

    def test_load_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            Load("d", "arr", index="i", scale=0)

    def test_store_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            Store("s", "arr", index="i", scale=-4)

    def test_operands_may_be_immediates(self):
        BinOp("d", "add", 1, 2)
        Mov("d", 42)
        Branch(0, "a", "b")

    def test_instruction_size_constant(self):
        assert INSTRUCTION_SIZE == 4


class TestCosts:
    def test_alu_cost(self):
        assert BinOp("d", "add", "a", "b").base_cycles == BASE_CYCLES["alu"]

    def test_mul_costs_more_than_add(self):
        assert BinOp("d", "mul", "a", "b").base_cycles > BinOp(
            "d", "add", "a", "b"
        ).base_cycles

    def test_div_costs_more_than_mul(self):
        assert BinOp("d", "div", "a", "b").base_cycles > BinOp(
            "d", "mul", "a", "b"
        ).base_cycles

    def test_memory_ops_cost(self):
        assert Load("d", "arr").base_cycles == BASE_CYCLES["load"]
        assert Store("s", "arr").base_cycles == BASE_CYCLES["store"]

    def test_terminator_costs(self):
        assert Jump("t").base_cycles == BASE_CYCLES["jump"]
        assert Branch("c", "a", "b").base_cycles == BASE_CYCLES["branch"]
        assert Halt().base_cycles == BASE_CYCLES["halt"]


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 3, 4, -1),
            ("mul", -3, 4, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -4),  # floor semantics
            ("mod", 7, 3, 1),
            ("mod", -7, 3, 2),  # Python mod semantics
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("shr", 16, 4, 1),
            ("min", 3, -5, -5),
            ("max", 3, -5, 3),
            ("lt", 1, 2, 1),
            ("le", 2, 2, 1),
            ("gt", 1, 2, 0),
            ("ge", 2, 2, 1),
            ("eq", 5, 5, 1),
            ("ne", 5, 5, 0),
        ],
    )
    def test_binop_semantics(self, op, lhs, rhs, expected):
        assert evaluate_binop(op, lhs, rhs) == expected

    @pytest.mark.parametrize(
        "op,src,expected",
        [
            ("neg", 5, -5),
            ("neg", -5, 5),
            ("abs", -7, 7),
            ("abs", 7, 7),
            ("not", 0, -1),
            ("bool", 0, 0),
            ("bool", -3, 1),
        ],
    )
    def test_unop_semantics(self, op, src, expected):
        assert evaluate_unop(op, src) == expected

    def test_unknown_ops_raise(self):
        with pytest.raises(ValueError):
            evaluate_binop("nope", 1, 2)
        with pytest.raises(ValueError):
            evaluate_unop("nope", 1)


@given(lhs=st.integers(), rhs=st.integers())
def test_comparisons_return_0_or_1(lhs, rhs):
    for op in ("lt", "le", "gt", "ge", "eq", "ne"):
        assert evaluate_binop(op, lhs, rhs) in (0, 1)


@given(lhs=st.integers(), rhs=st.integers(min_value=1, max_value=10**6))
def test_divmod_identity(lhs, rhs):
    q = evaluate_binop("div", lhs, rhs)
    r = evaluate_binop("mod", lhs, rhs)
    assert q * rhs + r == lhs
    assert 0 <= r < rhs


class TestStringification:
    def test_instruction_str_forms(self):
        assert str(Const("r1", 5)) == "r1 = 5"
        assert str(BinOp("d", "add", "a", 1)) == "d = a add 1"
        assert "arr" in str(Load("d", "arr", index="i"))
        assert str(Jump("blk")) == "jump blk"
        assert str(Halt()) == "halt"
        assert "?" in str(Branch("c", "a", "b"))
