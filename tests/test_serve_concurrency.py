"""Concurrency campaign against a live service/daemon.

The contract under test: many clients hammering the shared-warm-pool
daemon get **byte-identical** results (via
:func:`~repro.serve.protocol.canonical_json`) to running the same
systems directly through :func:`~repro.batch.engine.analyze_batch` /
:class:`~repro.analysis.whatif.WhatIfSession`; every per-request store
attribution obeys ``gets == hits + misses``; and the two 429 behaviours
(quota, shed) are exactly deterministic given their configuration — no
sleeps, no tolerances.

≥16 threads both at the service layer (no socket, workers=4) and over
real HTTP (ThreadingHTTPServer in-process).  The request pool mixes
experiment points (both experiments, several penalties, a custom
geometry) with Draw-protocol fuzz SystemSpecs, all with directly
computed reference payloads.
"""

from __future__ import annotations

import http.client
import json
import random
import threading

import pytest

from repro.analysis.store import ArtifactStore
from repro.analysis.whatif import WhatIfSession
from repro.batch.engine import SweepPoint, analyze_batch
from repro.cache.config import CacheConfig
from repro.experiments.setup import ALL_SPECS
from repro.fuzz.generator import case_from_seed
from repro.serve.daemon import make_server
from repro.serve.protocol import (
    ENVELOPE_KEYS,
    canonical_json,
    parse_request,
    point_payload,
    whatif_payload,
)
from repro.serve.quota import QuotaConfig
from repro.serve.service import AnalysisService

THREADS = 16
REQUESTS_PER_THREAD = 4

#: The request pool: every distinct system the campaign may submit.
POINT_BODIES = [
    {"kind": "point", "experiment": "exp1", "miss_penalty": 10},
    {"kind": "point", "experiment": "exp1", "miss_penalty": 40},
    {"kind": "point", "experiment": "exp2", "miss_penalty": 20},
    {
        "kind": "point",
        "experiment": "exp1",
        "miss_penalty": 20,
        "geometry": [32, 4, 16],
    },
]
SPEC_SEEDS = [(20040216, 1), (20040216, 2)]


def _point_reference(body: dict, store: ArtifactStore) -> str:
    cache = None
    if body.get("geometry"):
        num_sets, ways, line_size = body["geometry"]
        cache = CacheConfig(
            num_sets=num_sets,
            ways=ways,
            line_size=line_size,
            miss_penalty=body["miss_penalty"],
        )
    point = SweepPoint(
        experiment=body["experiment"],
        miss_penalty=body["miss_penalty"],
        cache=cache,
    )
    batch = analyze_batch([point], store=store)
    spec = {s.key: s for s in ALL_SPECS}[body["experiment"]]
    return canonical_json(point_payload(batch.results[0], periods=spec.periods))


def _spec_reference(body: dict, store: ArtifactStore) -> str:
    from repro.fuzz.spec import SystemSpec

    label = parse_request(body).label
    session = WhatIfSession(SystemSpec.from_json(body["spec"]), store=store)
    return canonical_json(whatif_payload(session.result(), label=label))


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """Request pool + directly computed reference payloads + warm store.

    The references run through the exact same store directory the
    service will use, so the campaign exercises the warm path — which is
    precisely where byte-identity could break if telemetry leaked into
    the canonical payload.
    """
    store_dir = tmp_path_factory.mktemp("serve-campaign-store")
    store = ArtifactStore(directory=store_dir)
    bodies = []
    expected = {}
    for body in POINT_BODIES:
        bodies.append(body)
        expected[canonical_json(body)] = _point_reference(body, store)
    for master, index in SPEC_SEEDS:
        body = {"kind": "spec", "spec": case_from_seed(master, index).to_json()}
        bodies.append(body)
        expected[canonical_json(body)] = _spec_reference(body, store)
    return {"bodies": bodies, "expected": expected, "store_dir": store_dir}


def _check_envelope(env: dict, body: dict, campaign: dict) -> None:
    assert set(env) == ENVELOPE_KEYS
    assert env["state"] == "done", env["error"]
    got = canonical_json(env["result"])
    assert got == campaign["expected"][canonical_json(body)], (
        "served result is not byte-identical to the direct run for "
        f"{body.get('experiment', body['kind'])!r}"
    )
    store = env["store"]
    assert store["gets"] == store["hits"] + store["misses"]
    assert store["hits"] == sum(k["hits"] for k in store["by_kind"].values())
    assert store["misses"] == sum(k["misses"] for k in store["by_kind"].values())


def test_service_concurrent_byte_identity(campaign):
    """16 threads × 4 randomized submissions, all byte-identical."""
    service = AnalysisService(
        workers=4,
        queue_capacity=THREADS * REQUESTS_PER_THREAD,
        store=ArtifactStore(directory=campaign["store_dir"]),
    )
    failures: list = []
    checked = [0] * THREADS

    def client(index: int) -> None:
        rng = random.Random(0xC0FFEE + index)
        try:
            for _ in range(REQUESTS_PER_THREAD):
                body = rng.choice(campaign["bodies"])
                job = service.submit(body, client=f"client-{index}")
                assert service.wait(job.id, timeout=180)
                _check_envelope(service.job_envelope(job), body, campaign)
                checked[index] += 1
        except BaseException as error:  # noqa: BLE001 - collected for report
            failures.append((index, repr(error)))

    with service:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        stats = service.stats()
    assert failures == []
    assert sum(checked) == THREADS * REQUESTS_PER_THREAD
    # Server-level coherence after the stampede.
    assert stats["jobs"] == {"done": THREADS * REQUESTS_PER_THREAD}
    assert stats["shed"] == 0
    assert stats["store"]["gets"] == (
        stats["store"]["hits"] + stats["store"]["misses"]
    )


def test_http_concurrent_byte_identity(campaign):
    """Same campaign over real HTTP with wait=true submits."""
    service = AnalysisService(
        workers=4,
        queue_capacity=THREADS * 2,
        store=ArtifactStore(directory=campaign["store_dir"]),
    )
    service.start()
    server = make_server("127.0.0.1", 0, service)
    listener = threading.Thread(target=server.serve_forever, daemon=True)
    listener.start()
    port = server.server_address[1]
    failures: list = []

    def client(index: int) -> None:
        rng = random.Random(0xBEEF + index)
        try:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=180)
            for _ in range(2):
                body = rng.choice(campaign["bodies"])
                request = dict(body)
                request["wait"] = True
                request["timeout"] = 180
                connection.request(
                    "POST",
                    "/v1/analyze",
                    body=json.dumps(request),
                    headers={
                        "Content-Type": "application/json",
                        "X-Client": f"http-{index}",
                    },
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200, payload
                assert payload["client"] == f"http-{index}"
                _check_envelope(payload, body, campaign)
            connection.close()
        except BaseException as error:  # noqa: BLE001
            failures.append((index, repr(error)))

    try:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=True)
    assert failures == []


def test_warm_resubmission_is_all_hits(campaign):
    """A repeated system is answered entirely from the shared store —
    and still byte-identical."""
    body = POINT_BODIES[0]
    with AnalysisService(
        workers=1, store=ArtifactStore(directory=campaign["store_dir"])
    ) as service:
        first = service.submit(body)
        assert service.wait(first.id, timeout=180)
        second = service.submit(body)
        assert service.wait(second.id, timeout=180)
        first_env = service.job_envelope(first)
        second_env = service.job_envelope(second)
    _check_envelope(first_env, body, campaign)
    _check_envelope(second_env, body, campaign)
    assert second_env["store"]["misses"] == 0
    assert second_env["store"]["hits"] > 0
    assert canonical_json(first_env["result"]) == canonical_json(
        second_env["result"]
    )


class SteppedClock:
    """Deterministic quota clock: advances only when told to."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_quota_is_deterministic(campaign):
    """Given capacity=2, refill=1/s and a stepped clock, admission is an
    exact function of the submission sequence — no timing slack."""
    clock = SteppedClock()
    body = POINT_BODIES[0]
    with AnalysisService(
        workers=1,
        queue_capacity=16,
        quota=QuotaConfig(capacity=2, refill_per_second=1.0),
        quota_clock=clock,
        store=ArtifactStore(directory=campaign["store_dir"]),
    ) as service:
        statuses = [
            service.submit_envelope(body, client="tenant")[0] for _ in range(4)
        ]
        assert statuses == [202, 202, 429, 429]
        status, env = service.submit_envelope(body, client="tenant")
        assert status == 429
        assert env["error_kind"] == "quota"
        assert env["job"] is None
        assert "retry in" in env["error"]
        # Another client has an untouched bucket.
        assert service.submit_envelope(body, client="other")[0] == 202
        # Half a token is not a token.
        clock.advance(0.5)
        assert service.submit_envelope(body, client="tenant")[0] == 429
        # One full second -> exactly one admission, then dry again.
        clock.advance(0.5)
        assert service.submit_envelope(body, client="tenant")[0] == 202
        assert service.submit_envelope(body, client="tenant")[0] == 429
        stats = service.stats()
        assert stats["quota"]["granted"] == 4
        assert stats["quota"]["refused"] == 5


def test_shed_is_deterministic(campaign):
    """With 1 wedged worker and capacity 2, the 4th concurrent submit —
    and exactly the 4th — sheds; quota is refunded on shed."""
    started = threading.Event()
    gate = threading.Event()

    def wedge(job):
        started.set()
        assert gate.wait(timeout=60)

    clock = SteppedClock()
    body = POINT_BODIES[0]
    service = AnalysisService(
        workers=1,
        queue_capacity=2,
        quota=QuotaConfig(capacity=10, refill_per_second=1.0),
        quota_clock=clock,
        store=ArtifactStore(directory=campaign["store_dir"]),
        job_hook=wedge,
    )
    with service:
        first = service.submit_envelope(body, client="burst")
        assert first[0] == 202
        # Wait for the worker to *dequeue* job 1 before filling the
        # queue, otherwise job 1 may still occupy a slot and the shed
        # boundary would race.
        assert started.wait(timeout=60)
        statuses = [first[0]]
        envs = [first[1]]
        for _ in range(3):
            status, env = service.submit_envelope(body, client="burst")
            statuses.append(status)
            envs.append(env)
        assert statuses == [202, 202, 202, 429]
        assert envs[-1]["error_kind"] == "shed"
        assert "queue is full" in envs[-1]["error"]
        # Shed refunded the token: 4 submitted, only 3 admitted count.
        assert service.quota.available("burst") == pytest.approx(10 - 3)
        stats = service.stats()
        assert stats["shed"] == 1
        assert stats["quota"]["granted"] == 4  # grants are not rewound...
        assert stats["quota"]["refused"] == 0  # ...and shed is not a refusal
        gate.set()
        for env in envs[:3]:
            assert service.wait(env["job"], timeout=180)
            assert service.get_job(env["job"]).state == "done"


def test_queued_envelope_reports_202(campaign):
    """A queued job's GET answers 202 with a result-free envelope."""
    started = threading.Event()
    gate = threading.Event()

    def wedge(job):
        started.set()
        assert gate.wait(timeout=60)

    body = POINT_BODIES[0]
    service = AnalysisService(
        workers=1,
        queue_capacity=4,
        store=ArtifactStore(directory=campaign["store_dir"]),
        job_hook=wedge,
    )
    with service:
        running = service.submit(body)
        assert started.wait(timeout=60)
        queued = service.submit(body)
        status, env = service.status_envelope(queued.id)
        assert status == 202
        assert env["state"] == "queued"
        assert env["result"] is None
        status, env = service.status_envelope(running.id)
        assert status == 200
        assert env["state"] == "running"
        gate.set()
        assert service.wait(queued.id, timeout=180)
        assert service.status_envelope(queued.id)[0] == 200
