"""Unit tests for useful-memory-block analysis and the MUMBS (Definition 4)."""

from repro.analysis import analyze_task, compute_useful_blocks, solve_rmb_lmb
from repro.cache import CacheConfig
from repro.program import ProgramBuilder, SystemLayout
from repro.vm import NodeTraceAggregate, TraceRecorder
from repro.vm.machine import run_isolated


def analyze(program, inputs, config):
    layout = SystemLayout().place(program)
    return analyze_task(layout, {"default": inputs}, config)


def config8(ways=2):
    return CacheConfig(num_sets=8, ways=ways, line_size=16, miss_penalty=10)


class TestUsefulBlocks:
    def test_reused_block_is_useful(self):
        """A block read before and after a point is useful there."""
        b = ProgramBuilder("p")
        data = b.array("data", words=4)
        spacer = b.array("spacer", words=4)
        b.load("v", data, index=0)
        b.load("w", spacer, index=0)
        b.load("v2", data, index=0)
        program = b.build()
        art = analyze(program, {"data": [1, 2, 3, 4], "spacer": [0] * 4}, config8())
        data_block = art.layout.symbol_base("data")
        assert data_block in art.useful.mumbs()

    def test_single_touch_block_not_useful_after_its_phase(self):
        """Blocks touched only in a one-shot phase drop out of the MUMBS
        when another phase has the larger working set."""
        b = ProgramBuilder("p")
        oneshot = b.array("oneshot", words=8)  # 2 blocks, touched once
        hot = b.array("hot", words=32)  # 8 blocks, touched repeatedly
        with b.loop(8) as i:
            b.store(0, oneshot, index=i)
        with b.loop(4):
            with b.loop(32) as j:
                b.load("v", hot, index=j)
        program = b.build()
        art = analyze(program, {"hot": list(range(32))}, config8(ways=4))
        mumbs = art.useful.mumbs()
        hot_base = art.layout.symbol_base("hot")
        hot_blocks = {hot_base + 16 * k for k in range(8)}
        oneshot_base = art.layout.symbol_base("oneshot")
        oneshot_blocks = {oneshot_base, oneshot_base + 16}
        assert hot_blocks <= mumbs
        assert not (oneshot_blocks & mumbs)

    def test_reload_bound_capped_at_ways_per_set(self):
        """At most L lines of one set can be useful (resident) at once."""
        config = CacheConfig(num_sets=1, ways=2, line_size=16, miss_penalty=10)
        b = ProgramBuilder("p")
        data = b.array("data", words=24)  # 6 blocks, all in the single set
        with b.loop(3):
            with b.loop(24) as i:
                b.load("v", data, index=i)
        program = b.build()
        art = analyze(program, {"data": list(range(24))}, config)
        # Useful *blocks* may exceed L, but the reload bound cannot.
        assert art.useful.lee_reload_bound() <= config.ways * config.num_sets

    def test_mumbs_subset_of_footprint(self, analyzed_pair):
        for art in (analyzed_pair["low"], analyzed_pair["high"]):
            assert art.useful.mumbs() <= art.footprint

    def test_lee_bound_le_footprint_line_bound(self, analyzed_pair):
        from repro.cache.ciip import line_usage_bound

        for art in (analyzed_pair["low"], analyzed_pair["high"]):
            assert art.useful.lee_reload_bound() <= line_usage_bound(
                art.footprint_ciip
            )

    def test_execution_points_cover_entry_exit_within(self):
        b = ProgramBuilder("p")
        data = b.array("data", words=4)
        b.load("v", data, index=0)
        program = b.build()
        art = analyze(program, {"data": [0] * 4}, config8())
        positions = {u.point.position for u in art.useful.points}
        assert positions == {"entry", "exit", "within"}
        labels = {u.point.label for u in art.useful.points}
        assert labels == set(program.cfg.labels())

    def test_within_point_captures_intra_block_reuse(self):
        """A block loaded and re-read inside one basic block is useful at
        the within point even if invisible at both boundaries."""
        config = config8(ways=1)
        b = ProgramBuilder("p")
        data = b.array("data", words=4)
        evictor = b.array("evictor", words=4)
        # Single block: load data, evict it (same set via 128-byte spacing
        # is not possible within one array here, so use two arrays), reload.
        b.load("v", data, index=0)
        b.load("w", evictor, index=0)
        b.load("v2", data, index=0)
        program = b.build()
        layout = SystemLayout().place(program)
        # Force the two arrays into the same cache set by checking geometry;
        # regardless, the data block is referenced before and after the
        # middle reference, so it must appear at the entry's within point.
        art = analyze_task(layout, {"default": {"data": [0] * 4, "evictor": [0] * 4}}, config)
        data_block = layout.symbol_base("data")
        within = [
            u
            for u in art.useful.points
            if u.point.position == "within" and u.point.label == "p.entry"
        ]
        assert within and data_block in within[0].blocks()

    def test_no_points_raises(self):
        import pytest

        from repro.analysis.useful import UsefulBlocksAnalysis

        empty = UsefulBlocksAnalysis(config=config8(), points=[])
        with pytest.raises(ValueError):
            empty.max_point()

    def test_useful_blocks_sound_against_measured_reloads(self):
        """Empirical Lee soundness: flush the cache at a block boundary and
        count how many task blocks actually get re-loaded afterwards that
        were resident before — never more than the Lee bound."""
        from repro.cache import CacheState
        from repro.program import ProgramBuilder
        from repro.vm import Machine

        config = config8(ways=2)
        b = ProgramBuilder("p")
        data = b.array("data", words=16)
        out = b.array("out", words=16)
        with b.loop(2):
            with b.loop(16) as i:
                b.load("v", data, index=i)
                b.store("v", out, index=i)
        program = b.build()
        layout = SystemLayout().place(program)
        inputs = {"data": list(range(16))}
        art = analyze_task(layout, {"default": inputs}, config)
        bound = art.useful.lee_reload_bound()

        # Interrupt the run at every 25th step, flush everything (worst-case
        # preemption), and count reloads of blocks that were resident.
        cache = CacheState(config)
        machine = Machine(layout=layout, cache=cache)
        machine.write_array("data", inputs["data"])
        step = 0
        while not machine.halted:
            machine.step()
            step += 1
            if step % 25 == 0 and not machine.halted:
                resident_before = cache.resident_blocks() & art.footprint
                cache.invalidate()
                # Run to completion counting reloads of evicted blocks.
                reloaded = set()
                while not machine.halted:
                    before = cache.resident_blocks()
                    machine.step()
                    added = cache.resident_blocks() - before
                    reloaded |= added & resident_before
                assert len(reloaded) <= bound
                return
