"""Tests for the reproduction self-check (validation report)."""

from repro.experiments import EXPERIMENT_I_SPEC, validate_reproduction
from repro.experiments.validation import Check, ValidationReport


class TestReportStructure:
    def test_check_rendering(self):
        assert "[PASS]" in Check(name="x", passed=True).render()
        assert "[FAIL]" in Check(name="x", passed=False).render()
        assert "(why)" in Check(name="x", passed=False, detail="why").render()

    def test_report_verdict(self):
        report = ValidationReport()
        report.add("a", True)
        assert report.passed
        report.add("b", False, "broke")
        assert not report.passed
        text = report.render()
        assert "FAILURES PRESENT" in text
        assert "broke" in text

    def test_empty_report_passes(self):
        assert ValidationReport().passed


class TestValidateReproduction:
    def test_single_experiment_single_penalty(self):
        """A reduced validation run must pass and cover the key claims."""
        report = validate_reproduction(
            penalties=(20,), specs=(EXPERIMENT_I_SPEC,)
        )
        assert report.passed, report.render()
        names = [check.name for check in report.checks]
        assert any("App4 <= min" in name for name in names)
        assert any("ART <= every" in name for name in names)
        assert any("Eq.6 underestimates" in name for name in names)

    def test_cli_validate(self, capsys):
        from repro.cli import main

        code = main(["validate", "--penalties", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALL CHECKS PASSED" in out
