"""Minimized regressions from the differential fuzzing campaign.

Each spec below was found by ``repro fuzz run``, root-caused, fixed, and
minimized by ``repro fuzz shrink`` (the JSON is the shrinker's output,
committed verbatim).  Keep these green: they are the smallest known
systems that distinguished a sound engine from an unsound one.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.analysis.artifacts import analyze_task
from repro.analysis.wcet import static_wcet_bound
from repro.fuzz.build import build_case, scenarios_for
from repro.fuzz.runner import run_one_case
from repro.fuzz.spec import SystemSpec

# Campaign seed 4, case 8, shrunk from weight 452 to 37 (4 CFG nodes):
# one single-word storing sweep on a one-line write-back cache.
# static_wcet_bound charged miss_penalty per miss but not the dirty-line
# writeback a write-back miss can trigger, so the "all-miss" bound
# undercut the measured WCET (6780 < 7260 on the unshrunk case).
WRITEBACK_STATIC_BOUND_SPEC = json.loads(r"""
{
    "version": 1,
    "cache": {"num_sets": 1, "ways": 1, "line_size": 4, "miss_penalty": 2,
              "policy": "lru", "write_back": true},
    "tasks": [{"program": {"arrays": [1], "body": [["mem", 0, 1, 1, 1, 1]]},
               "period_mult": 3, "jitter_pct": 0}],
    "context_switch": 0,
    "preempt_steps": [1],
    "stagger": false
}
""")


def test_fuzz_regression_seed4_case8_writeback_static_bound():
    spec = SystemSpec.from_json(WRITEBACK_STATIC_BOUND_SPEC)
    violations = run_one_case(4, 8, spec=spec)
    assert not violations, "\n".join(str(v) for v in violations)


def test_static_bound_charges_writebacks():
    """The direct form of the same bug: on the minimized system the
    all-miss bound must dominate the measured WCET, and the write-back
    geometry must price strictly above the write-through one (the
    program stores, so dirty evictions are reachable)."""
    spec = SystemSpec.from_json(WRITEBACK_STATIC_BOUND_SPEC)
    case = build_case(spec)
    (task,) = case.tasks
    assert static_wcet_bound(task.layout, case.config) >= task.artifacts.wcet.cycles

    write_through = replace(case.config, write_back=False)
    assert static_wcet_bound(task.layout, case.config) > static_wcet_bound(
        task.layout, write_through
    )
    # And the bound stays sound on the cheaper geometry too.
    art = analyze_task(task.layout, scenarios_for(task.inputs), write_through)
    assert static_wcet_bound(task.layout, write_through) >= art.wcet.cycles
