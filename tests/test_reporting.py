"""Tests for the table rendering and CSV export."""

import pytest

from repro.experiments.reporting import Table, percent_improvement


@pytest.fixture
def table():
    t = Table(title="T", headers=["name", "count", "ratio"])
    t.add_row("alpha", 3, 0.5)
    t.add_row("beta, gamma", 12, 1.25)
    t.notes.append("a note")
    return t


class TestRender:
    def test_render_structure(self, table):
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "=" * len("T")
        assert "name" in lines[2]
        assert "alpha" in text
        assert "note: a note" in text

    def test_floats_one_decimal(self, table):
        assert "1.2" in table.render()  # 1.25 -> 1.2 by format

    def test_bool_rendering(self):
        t = Table(title="b", headers=["ok"])
        t.add_row(True)
        t.add_row(False)
        assert "yes" in t.render() and "no" in t.render()

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(ValueError, match="columns"):
            table.add_row("only-one")

    def test_column_access(self, table):
        assert table.column("count") == [3, 12]
        with pytest.raises(KeyError):
            table.column("missing")


class TestCSV:
    def test_csv_structure(self, table):
        csv = table.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "name,count,ratio"
        assert lines[1] == "alpha,3,0.5"

    def test_csv_escaping(self, table):
        csv = table.to_csv()
        assert '"beta, gamma"' in csv

    def test_csv_quote_doubling(self):
        t = Table(title="q", headers=["v"])
        t.add_row('say "hi"')
        assert '"say ""hi"""' in t.to_csv()

    def test_notes_not_in_csv(self, table):
        assert "a note" not in table.to_csv()

    def test_cli_csv_export(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["tables", "--only", "table1", "--no-art",
             "--csv", str(tmp_path / "csv")]
        )
        assert code == 0
        files = list((tmp_path / "csv").glob("*.csv"))
        assert len(files) == 1
        content = files[0].read_text()
        assert content.startswith("Experiment,Task,")


class TestPercentImprovement:
    def test_basic(self):
        assert percent_improvement(100, 60) == pytest.approx(40.0)
        assert percent_improvement(100, 100) == 0.0
        assert percent_improvement(0, 50) == 0.0

    def test_negative_when_worse(self):
        assert percent_improvement(100, 120) == pytest.approx(-20.0)
