"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.sched.events import EventKind, SchedulerEvent
from repro.sched.gantt import (
    GLYPH_RELEASE,
    GLYPH_RUN,
    GLYPH_SWITCH,
    render_gantt,
)


def events_simple():
    E = SchedulerEvent
    return [
        E(0, EventKind.RELEASE, "a", 0),
        E(0, EventKind.RELEASE, "b", 0),
        E(0, EventKind.START, "a", 0),
        E(50, EventKind.COMPLETE, "a", 0),
        E(50, EventKind.CONTEXT_SWITCH, "b", 0),
        E(60, EventKind.START, "b", 0),
        E(100, EventKind.PREEMPT, "b", 0),
        E(100, EventKind.RELEASE, "a", 1),
        E(100, EventKind.START, "a", 1),
        E(120, EventKind.COMPLETE, "a", 1),
        E(120, EventKind.RESUME, "b", 0),
        E(160, EventKind.COMPLETE, "b", 0),
    ]


class TestRenderGantt:
    def test_one_row_per_task(self):
        text = render_gantt(events_simple(), ["a", "b"], until=160, width=80)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 task rows
        assert lines[1].lstrip().startswith("a |")
        assert lines[2].lstrip().startswith("b |")

    def test_execution_glyphs_present(self):
        text = render_gantt(events_simple(), ["a", "b"], until=160, width=80)
        a_row = text.splitlines()[1]
        b_row = text.splitlines()[2]
        assert GLYPH_RUN in a_row
        assert GLYPH_RUN in b_row
        assert GLYPH_SWITCH in b_row  # the context switch before b started

    def test_preempted_task_has_gap(self):
        """b's row shows two separate run segments around a's second job."""
        text = render_gantt(events_simple(), ["a", "b"], until=160, width=160)
        b_cells = text.splitlines()[2].split("|")[1]
        runs = [
            segment for segment in "".join(
                c if c == GLYPH_RUN else " " for c in b_cells
            ).split() if segment
        ]
        assert len(runs) >= 2

    def test_release_markers(self):
        # Make releases land where nothing executes so the marker survives.
        E = SchedulerEvent
        events = [
            E(0, EventKind.RELEASE, "a", 0),
            E(40, EventKind.START, "a", 0),
            E(80, EventKind.COMPLETE, "a", 0),
        ]
        text = render_gantt(events, ["a"], until=160, width=160)
        assert GLYPH_RELEASE in text or "·" in text

    def test_row_width_bounded(self):
        text = render_gantt(events_simple(), ["a", "b"], until=160, width=40)
        for line in text.splitlines()[1:]:
            cells = line.split("|")[1]
            assert len(cells) <= 41

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            render_gantt([], ["a"], until=0)
        with pytest.raises(ValueError):
            render_gantt([], ["a"], until=100, width=0)

    def test_real_simulation_renders(self, experiment1_context):
        result = experiment1_context.simulate()
        text = render_gantt(
            result.events,
            list(experiment1_context.priority_order),
            until=150_000,
        )
        assert GLYPH_RUN in text
        for task in experiment1_context.priority_order:
            assert task in text
