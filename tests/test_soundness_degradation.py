"""Soundness regression: the degraded bound always dominates the exact one.

The guard layer's whole claim is that degrading under a tripped budget is
*sound*: :func:`~repro.analysis.crpd.conservative_approach4_lines` (the
path-free fallback on the ladder Eq. 4 → MUMBS∩CIIP → |MUMBS| per-set
cap) must never be below the exact Approach 4 value it stands in for —
checked here on both built-in experiment workloads, both MUMBS modes, and
the synthetic pair fixture, so a regression in either side of the
inequality fails tier-1.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Approach,
    approach2_lines,
    approach4_lines,
    conservative_approach4_lines,
)


def preemption_pairs(context):
    """(preempted, preempting) artifact pairs of one experiment context."""
    order = list(context.priority_order)
    return [
        (context.crpd.tasks[order[low]], context.crpd.tasks[high])
        for low in range(1, len(order))
        for high in order[:low]
    ]


@pytest.fixture(scope="session")
def experiment_pairs(experiment1_context, experiment2_context):
    return preemption_pairs(experiment1_context) + preemption_pairs(
        experiment2_context
    )


@pytest.mark.parametrize("mode", ["paper", "per_point"])
def test_fallback_dominates_exact_on_experiments(experiment_pairs, mode):
    assert experiment_pairs
    for preempted, preempting in experiment_pairs:
        exact = approach4_lines(preempted, preempting, mumbs_mode=mode)
        fallback = conservative_approach4_lines(preempted, preempting, mode)
        assert fallback >= exact, (
            f"unsound fallback for {preempted.name}<-{preempting.name} "
            f"({mode}): fallback {fallback} < exact {exact}"
        )


@pytest.mark.parametrize("mode", ["paper", "per_point"])
def test_fallback_dominates_exact_on_synthetic_pair(analyzed_pair, mode):
    low, high = analyzed_pair["low"], analyzed_pair["high"]
    for preempted, preempting in [(low, high), (high, low)]:
        exact = approach4_lines(preempted, preempting, mumbs_mode=mode)
        fallback = conservative_approach4_lines(preempted, preempting, mode)
        assert fallback >= exact


def test_fallback_is_not_looser_than_approaches_2_and_3(experiment_pairs):
    """Degrading never costs more than just using Approach 2 or 3 outright."""
    for preempted, preempting in experiment_pairs:
        fallback = conservative_approach4_lines(preempted, preempting)
        assert fallback <= approach2_lines(preempted, preempting)
        assert fallback <= preempted.useful.lee_reload_bound()


def test_experiment_contexts_are_exact_by_default(
    experiment1_context, experiment2_context
):
    """The built-in workloads fit the default budgets: no degradation."""
    for context in (experiment1_context, experiment2_context):
        assert context.crpd.soundness == "exact"
        for artifacts in context.crpd.tasks.values():
            assert artifacts.path_enumeration_complete
            assert artifacts.path_profiles


def test_degraded_estimate_matches_fallback_function(experiment1_context):
    """A CRPD analyzer that must degrade reports exactly the ladder value."""
    import dataclasses

    from repro.analysis import CRPDAnalyzer
    from repro.guard import AnalysisBudget, DegradationLedger

    tasks = dict(experiment1_context.crpd.tasks)
    order = list(experiment1_context.priority_order)
    preempting_name, preempted_name = order[0], order[-1]
    # Simulate a tripped path budget on the preemptor.
    tasks[preempting_name] = dataclasses.replace(
        tasks[preempting_name],
        path_profiles=[],
        path_enumeration_complete=False,
    )
    ledger = DegradationLedger()
    crpd = CRPDAnalyzer(tasks, budget=AnalysisBudget(), ledger=ledger)
    degraded = crpd.lines_reloaded(preempted_name, preempting_name, Approach.COMBINED)
    assert degraded == conservative_approach4_lines(
        experiment1_context.crpd.tasks[preempted_name],
        experiment1_context.crpd.tasks[preempting_name],
        "per_point",
    )
    exact = approach4_lines(
        experiment1_context.crpd.tasks[preempted_name],
        experiment1_context.crpd.tasks[preempting_name],
        mumbs_mode="per_point",
    )
    assert degraded >= exact
    assert ledger.soundness == "conservative"
