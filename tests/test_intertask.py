"""Unit tests for inter-task cache eviction analysis (Approaches 1/2, Eq. 2/3)."""

from repro.analysis import (
    approach1_lines,
    approach2_lines,
    eq3_lines,
    footprint_overlap_blocks,
)
from repro.analysis.artifacts import analyze_task
from repro.cache import CacheConfig
from repro.program import ProgramBuilder, SystemLayout


def make_artifacts(config, placements):
    """placements: list of (name, words, reps); returns dict of artifacts."""
    layout = SystemLayout()
    artifacts = {}
    for name, words, reps in placements:
        b = ProgramBuilder(name)
        data = b.array("data", words=words)
        with b.loop(reps):
            with b.loop(words) as i:
                b.load("v", data, index=i)
        placed = layout.place(b.build())
        artifacts[name] = analyze_task(
            placed, {"d": {"data": list(range(words))}}, config
        )
    return artifacts


class TestApproaches:
    def test_approach1_counts_preempting_lines(self):
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("low", 64, 1), ("high", 16, 1)])
        lines = approach1_lines(arts["high"])
        # high touches 4 data blocks + its code blocks; each counted once.
        assert lines == len(arts["high"].footprint)

    def test_approach1_ignores_preempted_task(self):
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(
            config, [("low", 64, 1), ("other", 8, 1), ("high", 16, 1)]
        )
        assert approach1_lines(arts["high"]) == approach1_lines(arts["high"])

    def test_approach2_bounded_by_both_footprints(self):
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("low", 64, 1), ("high", 16, 1)])
        lines = approach2_lines(arts["low"], arts["high"])
        assert lines <= approach1_lines(arts["high"])
        assert lines <= approach1_lines(arts["low"])

    def test_eq3_never_exceeds_approach2(self):
        """Equation 3 uses the MUMBS subset, so it can only be tighter."""
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("low", 64, 2), ("high", 24, 2)])
        assert eq3_lines(arts["low"], arts["high"]) <= approach2_lines(
            arts["low"], arts["high"]
        )

    def test_disjoint_footprints_give_zero(self):
        """The paper's motivating counterexample to Lee's assumption."""
        # One-set-per-region geometry: place two tiny tasks so their data
        # falls in different halves of the index space.
        config = CacheConfig(num_sets=256, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("low", 8, 1), ("high", 8, 1)])
        overlap = approach2_lines(arts["low"], arts["high"])
        shared_sets = arts["low"].footprint_ciip.indices() & arts[
            "high"
        ].footprint_ciip.indices()
        if not shared_sets:
            assert overlap == 0
        else:
            assert overlap > 0  # consistency either way

    def test_symmetry_of_equation2(self):
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("a", 40, 1), ("b", 24, 1)])
        assert approach2_lines(arts["a"], arts["b"]) == approach2_lines(
            arts["b"], arts["a"]
        )

    def test_footprint_overlap_blocks(self):
        config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
        arts = make_artifacts(config, [("low", 64, 1), ("high", 16, 1)])
        overlap = footprint_overlap_blocks(arts["low"], arts["high"])
        assert overlap <= arts["low"].footprint
        for block in overlap:
            index = config.index(block)
            assert arts["high"].footprint_ciip.group(index)

    def test_analyzed_pair_invariants(self, analyzed_pair):
        low, high = analyzed_pair["low"], analyzed_pair["high"]
        assert approach2_lines(low, high) <= approach1_lines(high)
        assert eq3_lines(low, high) <= approach2_lines(low, high)
