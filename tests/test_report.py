"""Tests for the analysis report rendering."""

import pytest

from repro.analysis import CRPDAnalyzer, system_report, task_report
from repro.wcrt import TaskSpec, TaskSystem


class TestTaskReport:
    def test_sections_present(self, analyzed_pair):
        text = task_report(analyzed_pair["low"])
        for header in ("[wcet]", "[memory footprint]",
                       "[useful memory blocks]", "[control structure]",
                       "[cache behaviour]"):
            assert header in text

    def test_reuse_section_optional(self, analyzed_pair):
        text = task_report(analyzed_pair["low"], include_reuse=False)
        assert "[cache behaviour]" not in text

    def test_numbers_consistent_with_artifacts(self, analyzed_pair):
        art = analyzed_pair["high"]
        text = task_report(art)
        assert str(art.wcet.cycles) in text
        assert f"{len(art.footprint)} blocks" in text
        assert f"{len(art.path_profiles)} feasible path" in text

    def test_multipath_task_lists_paths(self, analyzed_pair):
        text = task_report(analyzed_pair["high"])
        assert "then@" in text and "else@" in text

    def test_experiment_task_report(self, experiment1_context):
        text = task_report(experiment1_context.artifacts["ed"])
        assert "'ed'" in text
        assert "decision" in text  # the operator branch shows up


class TestSystemReport:
    def test_full_system_report(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        system = TaskSystem(
            tasks=[
                TaskSpec(
                    name="high",
                    wcet=analyzed_pair["high"].wcet.cycles,
                    period=20_000,
                    priority=1,
                ),
                TaskSpec(
                    name="low",
                    wcet=analyzed_pair["low"].wcet.cycles,
                    period=100_000,
                    priority=2,
                ),
            ]
        )
        text = system_report(crpd, system, context_switch=100)
        assert "low by high" in text
        for approach in (1, 2, 3, 4):
            assert f"Approach {approach}:" in text
        assert "R=" in text
        assert "ok" in text

    def test_deadline_miss_flagged(self, analyzed_pair):
        crpd = CRPDAnalyzer(
            {"low": analyzed_pair["low"], "high": analyzed_pair["high"]}
        )
        high_wcet = analyzed_pair["high"].wcet.cycles
        low_wcet = analyzed_pair["low"].wcet.cycles
        system = TaskSystem(
            tasks=[
                TaskSpec(name="high", wcet=high_wcet,
                         period=int(high_wcet * 1.05), priority=1),
                TaskSpec(name="low", wcet=low_wcet,
                         period=low_wcet + high_wcet, priority=2),
            ]
        )
        text = system_report(crpd, system, context_switch=100)
        assert "MISSES DEADLINE" in text
