"""Boundary regressions for the WCRT recurrence (Eq. 6/7 + Tindell jitter).

These pin the exact semantics at the three places an off-by-one could
hide and survive every round-number test:

* the interference count ``ceil((w + Jj) / Pj)`` when ``w + Jj`` lands
  exactly on a period multiple — the release at the busy window's end
  belongs to the *next* busy period and must not interfere;
* the ``stop_at_deadline`` cut, which compares the *response*
  (``w + Ji``, own jitter included) strictly against the deadline —
  meeting the deadline exactly is schedulable and must not stop the
  iteration short of its fixpoint;
* the response/deadline equality in the final schedulability verdict.

Each expected number below is derived by hand in the comments, so a
future "fix" that shifts any boundary by one fails loudly here.
"""

from __future__ import annotations

from repro.wcrt import TaskSpec, TaskSystem
from repro.wcrt.response_time import compute_task_wcrt


def _two_tasks(victim_wcet, intruder_wcet, intruder_period, *,
               victim_jitter=0, intruder_jitter=0, victim_deadline=None,
               victim_period=100):
    return TaskSystem(
        tasks=[
            TaskSpec("intruder", wcet=intruder_wcet, period=intruder_period,
                     priority=1, jitter=intruder_jitter),
            TaskSpec("victim", wcet=victim_wcet, period=victim_period,
                     priority=2, jitter=victim_jitter,
                     deadline=victim_deadline),
        ]
    )


class TestPeriodMultipleBoundary:
    def test_release_at_window_end_does_not_interfere(self):
        # C_v=6, C_j=4, P_j=10: w = 6 -> ceil(6/10)*4+6 = 10 -> ceil(10/10)
        # = 1 release -> w = 10, fixpoint.  The intruder's second release
        # at t=10 coincides with the window end and must not be counted;
        # counting it would send the iteration to 14.
        result = compute_task_wcrt(_two_tasks(6, 4, 10), "victim")
        assert result.converged and result.wcrt == 10

    def test_jitter_shifts_the_boundary_not_past_it(self):
        # Same geometry with J_j=2 chosen so the fixpoint lands exactly on
        # the boundary: w = 4 -> ceil((4+2)/10) = 1 -> w = 8 ->
        # ceil((8+2)/10) = 1 exactly -> w = 8, fixpoint.  An inclusive
        # boundary would count 2 and settle at 12 instead.
        result = compute_task_wcrt(
            _two_tasks(4, 4, 10, intruder_jitter=2), "victim"
        )
        assert result.converged and result.wcrt == 8

    def test_one_cycle_of_jitter_buys_the_extra_release(self):
        # J_j=0 converges at 10 (above); J_j=1 pushes the count at w=10 to
        # ceil(11/10) = 2: w = 6 -> 10 -> 14 -> ceil(15/10) = 2 -> 14.
        # The extra preemption appears exactly one cycle past the
        # boundary, not at it.
        result = compute_task_wcrt(
            _two_tasks(6, 4, 10, intruder_jitter=1), "victim"
        )
        assert result.converged and result.wcrt == 14

    def test_multiple_releases_exact_boundary(self):
        # Two full periods: C_v=12, C_j=4, P_j=10: w = 12 ->
        # ceil(12/10)=2 -> w = 20 -> ceil(20/10) = 2, fixpoint.  The
        # third release at t=20 must not be counted (it would diverge
        # through 24 -> ceil(24/10)=3 -> 24...).
        result = compute_task_wcrt(_two_tasks(12, 4, 10), "victim")
        assert result.converged and result.wcrt == 20


class TestDeadlineBoundary:
    def test_response_equal_to_deadline_is_schedulable(self):
        # Alone on the processor: response = C + J = 5 + 3 = 8 == D.
        result = compute_task_wcrt(
            TaskSystem(tasks=[TaskSpec("victim", wcet=5, period=100,
                                       priority=1, jitter=3, deadline=8)]),
            "victim",
        )
        assert result.converged and result.wcrt == 8
        assert result.schedulable and not result.deadline_stopped

    def test_response_one_past_deadline_is_not(self):
        # TaskSpec rejects wcet + jitter > deadline outright, so the
        # overrun must come from interference: fixpoint response 10 with
        # D = 9.  (stop_at_deadline=False keeps the verdict on the exact
        # fixpoint rather than a deadline stop.)
        result = compute_task_wcrt(
            _two_tasks(6, 4, 10, victim_deadline=9), "victim",
            stop_at_deadline=False,
        )
        assert result.converged and result.wcrt == 10
        assert not result.schedulable and not result.deadline_stopped

    def test_stop_at_deadline_does_not_trip_on_exact_equality(self):
        # The iteration passes through response == deadline == 10 on its
        # way to the fixpoint 10 (converged there).  A non-strict stop
        # would mark it deadline_stopped and lose the exact verdict.
        result = compute_task_wcrt(
            _two_tasks(6, 4, 10, victim_deadline=10), "victim",
            stop_at_deadline=True,
        )
        assert result.converged and not result.deadline_stopped
        assert result.wcrt == 10 and result.schedulable

    def test_stop_uses_response_not_raw_window(self):
        # Window fixpoint is 10 but response = w + J_v = 13 > D = 12; a
        # stop that compared the raw window would miss the overrun.
        result = compute_task_wcrt(
            _two_tasks(6, 4, 10, victim_jitter=3, victim_deadline=12),
            "victim", stop_at_deadline=True,
        )
        assert result.wcrt == 13
        assert result.deadline_stopped or (
            result.converged and not result.schedulable
        )

    def test_stop_at_deadline_false_reaches_true_fixpoint(self):
        # D=8 is overrun at the first update (w=10 -> response 10 > 8) but
        # the unstopped iteration must still report the exact fixpoint.
        stopped = compute_task_wcrt(
            _two_tasks(6, 4, 10, victim_deadline=8), "victim",
            stop_at_deadline=True,
        )
        exact = compute_task_wcrt(
            _two_tasks(6, 4, 10, victim_deadline=8), "victim",
            stop_at_deadline=False,
        )
        assert stopped.deadline_stopped and not stopped.schedulable
        assert exact.converged and exact.wcrt == 10
        assert not exact.schedulable  # 10 > 8 even at the exact fixpoint


class TestJitterInterferenceIsMonotone:
    def test_wcrt_never_decreases_with_interferer_jitter(self):
        previous = 0
        # J <= 6: TaskSpec rejects wcet + jitter > deadline beyond that.
        for jitter in range(0, 7):
            result = compute_task_wcrt(
                _two_tasks(6, 4, 10, intruder_jitter=jitter), "victim"
            )
            assert result.converged
            assert result.wcrt >= previous, (
                f"J={jitter}: wcrt {result.wcrt} < {previous}"
            )
            previous = result.wcrt
