"""Tests for task release offsets (phased task sets)."""

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import EventKind, Simulator, TaskBinding
from repro.wcrt import TaskSpec


def make_binding(layout, name, words, reps, spec, offset=0):
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
    placed = layout.place(b.build())
    return TaskBinding(spec=spec, layout=placed,
                       inputs={"data": list(range(words))}, offset=offset)


@pytest.fixture
def config():
    return CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=10)


class TestOffsets:
    def test_negative_offset_rejected(self, config):
        layout = SystemLayout()
        spec = TaskSpec(name="t", wcet=100, period=1000, priority=1)
        with pytest.raises(ValueError, match="offset"):
            make_binding(layout, "t", 4, 1, spec, offset=-1)

    def test_releases_phased_by_offset(self, config):
        layout = SystemLayout()
        spec = TaskSpec(name="t", wcet=500, period=10_000, priority=1)
        binding = make_binding(layout, "t", 8, 4, spec, offset=3_000)
        sim = Simulator([binding], cache=CacheState(config))
        result = sim.run(horizon=33_000)
        releases = [
            e.time for e in result.events if e.kind is EventKind.RELEASE
        ]
        assert releases == [3_000, 13_000, 23_000]

    def test_zero_offset_unchanged(self, config):
        layout = SystemLayout()
        spec = TaskSpec(name="t", wcet=500, period=10_000, priority=1)
        binding = make_binding(layout, "t", 8, 4, spec)
        sim = Simulator([binding], cache=CacheState(config))
        result = sim.run(horizon=25_000)
        releases = [
            e.time for e in result.events if e.kind is EventKind.RELEASE
        ]
        assert releases == [0, 10_000, 20_000]

    def test_phasing_can_avoid_preemption(self, config):
        """A phase offset that separates the tasks in time removes the
        preemptions the critical instant provokes."""
        def build(offset):
            layout = SystemLayout()
            high = TaskSpec(name="high", wcet=1_200, period=10_000, priority=1)
            low = TaskSpec(name="low", wcet=4_000, period=20_000, priority=2)
            bindings = [
                make_binding(layout, "high", 8, 12, high, offset=offset),
                make_binding(layout, "low", 16, 20, low),
            ]
            return Simulator(bindings, cache=CacheState(config))

        critical = build(0).run(horizon=60_000)
        phased = build(6_000).run(horizon=60_000)
        assert phased.preemption_count("low") <= critical.preemption_count("low")
        assert phased.actual_response_time("low") <= critical.actual_response_time(
            "low"
        )

    def test_crpd_wcrt_bounds_every_phasing(self, config):
        """With caches, the synchronous release is NOT the worst case: a
        mid-execution preemption adds reload misses that an up-front one
        avoids (the very effect the paper models — plain critical-instant
        reasoning on context-free WCETs misses it).  The right invariant
        is that the Eq.7 WCRT with CRPD bounds the measured response for
        *every* phasing."""
        from repro.analysis import Approach, CRPDAnalyzer, analyze_task
        from repro.wcrt import TaskSystem, compute_system_wcrt

        high = TaskSpec(name="high", wcet=2_000, period=7_000, priority=1)
        low = TaskSpec(name="low", wcet=6_000, period=35_000, priority=2)

        def build(offset):
            layout = SystemLayout()
            bindings = [
                make_binding(layout, "high", 8, 12, high, offset=offset),
                make_binding(layout, "low", 16, 26, low),
            ]
            return layout, bindings

        # Analyse once (placement identical across offsets).
        layout, bindings = build(0)
        artifacts = {
            binding.spec.name: analyze_task(
                binding.layout, {"d": binding.inputs}, config
            )
            for binding in bindings
        }
        crpd = CRPDAnalyzer(artifacts)
        system = TaskSystem(tasks=[high, low])
        bound = compute_system_wcrt(
            system,
            cpre=lambda l, h: crpd.cpre(l, h, Approach.COMBINED),
        ).wcrt("low")

        arts = []
        for offset in (0, 500, 1_500, 3_000, 5_000):
            _, offset_bindings = build(offset)
            sim = Simulator(offset_bindings, cache=CacheState(config))
            arts.append(sim.run(horizon=140_000).actual_response_time("low"))
        assert all(art <= bound for art in arts), (arts, bound)
        # Document the phenomenon: some phased ART exceeds the synchronous
        # one (otherwise this test degenerates).
        assert max(arts[1:]) >= arts[0]
