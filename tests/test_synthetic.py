"""Tests for the synthetic task-set generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ALL_APPROACHES, Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig
from repro.program import SystemLayout
from repro.workloads import (
    SyntheticTaskSpec,
    build_synthetic_task,
    generate_task_set,
    uunifast_utilisations,
)


class TestSyntheticTask:
    def test_builds_and_runs(self):
        workload = build_synthetic_task(SyntheticTaskSpec(name="s"))
        workload.program.cfg.validate()
        config = CacheConfig.scaled_8k()
        layout = SystemLayout().place(workload.program)
        art = analyze_task(layout, workload.scenario_map(), config)
        assert art.wcet.cycles > 0
        assert len(art.footprint) > 0

    def test_phase_structure_shrinks_mumbs(self):
        """The stream phase is single-pass, so the MUMBS excludes part of
        the footprint — the structure Approach 3/4 exploit."""
        spec = SyntheticTaskSpec(
            name="s", stream_words=128, hot_words=32, hot_passes=4
        )
        workload = build_synthetic_task(spec)
        config = CacheConfig.scaled_8k()
        layout = SystemLayout().place(workload.program)
        art = analyze_task(layout, workload.scenario_map(), config)
        assert len(art.useful.mumbs()) < len(art.footprint)

    def test_deterministic(self):
        a = build_synthetic_task(SyntheticTaskSpec(name="s", seed=3))
        b = build_synthetic_task(SyntheticTaskSpec(name="s", seed=3))
        assert a.scenario("gen").inputs == b.scenario("gen").inputs

    def test_invalid_specs(self):
        with pytest.raises(ValueError, match="at least 4"):
            SyntheticTaskSpec(name="s", stream_words=2)
        with pytest.raises(ValueError, match="passes"):
            SyntheticTaskSpec(name="s", hot_passes=0)


class TestUUniFast:
    @given(
        count=st.integers(min_value=1, max_value=12),
        total_milli=st.integers(min_value=50, max_value=950),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_sums_and_bounds(self, count, total_milli, seed):
        total = total_milli / 1000
        values = uunifast_utilisations(count, total, seed=seed)
        assert len(values) == count
        assert abs(sum(values) - total) < 1e-9
        assert all(0 <= value <= total + 1e-9 for value in values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            uunifast_utilisations(0, 0.5)
        with pytest.raises(ValueError):
            uunifast_utilisations(2, 2.5)

    def test_deterministic(self):
        assert uunifast_utilisations(5, 0.7, seed=9) == uunifast_utilisations(
            5, 0.7, seed=9
        )


class TestGeneratedSystem:
    def test_generate_structure(self):
        system = generate_task_set(count=4, seed=2)
        assert len(system.workloads) == 4
        assert len(system.priority_order) == 4
        periods = [system.periods[name] for name in system.priority_order]
        assert all(p > 0 for p in periods)

    def test_minimum_two_tasks(self):
        with pytest.raises(ValueError, match="at least 2"):
            generate_task_set(count=1)

    def test_full_analysis_on_generated_set(self):
        """Whole pipeline on a 4-task synthetic set: orderings hold for
        every preemption pair."""
        system = generate_task_set(count=4, seed=7)
        config = CacheConfig.scaled_8k()
        layout = SystemLayout(stride=0x1B00)
        artifacts = {}
        for name in system.priority_order:
            placed = layout.place(system.workloads[name].program)
            artifacts[name] = analyze_task(
                placed, system.workloads[name].scenario_map(), config
            )
        crpd = CRPDAnalyzer(artifacts)
        estimates = crpd.estimate_all_pairs(list(system.priority_order))
        assert len(estimates) == 6  # 4 tasks -> 3+2+1 pairs
        for estimate in estimates:
            lines = estimate.lines
            assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
            assert lines[Approach.COMBINED] <= lines[Approach.LEE]
            assert lines[Approach.INTERTASK] <= lines[Approach.BUSQUETS]
