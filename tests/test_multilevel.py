"""Tests for the multi-level CRPD analysis extension."""

import pytest

from repro.analysis import (
    ALL_APPROACHES,
    Approach,
    HierarchicalCRPD,
    analyze_task_hierarchy,
    measure_wcet_hierarchy,
)
from repro.cache import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.program import ProgramBuilder, SystemLayout
from repro.vm import Machine


def hierarchy():
    return HierarchyConfig(
        l1=CacheConfig(num_sets=8, ways=2, line_size=16, miss_penalty=10),
        l2=CacheConfig(num_sets=32, ways=4, line_size=32, miss_penalty=40),
    )


def build_stream(name, words, reps=3):
    b = ProgramBuilder(name)
    data = b.array("data", words=words)
    with b.loop(reps):
        with b.loop(words) as i:
            b.load("v", data, index=i)
    return b.build(), {"d": {"data": list(range(words))}}


@pytest.fixture(scope="module")
def analyzed():
    layout = SystemLayout()
    low_program, low_scenarios = build_stream("low", 64)
    high_program, high_scenarios = build_stream("high", 48)
    low_layout = layout.place(low_program)
    high_layout = layout.place(high_program)
    h = hierarchy()
    return {
        "hierarchy": h,
        "layouts": {"low": low_layout, "high": high_layout},
        "scenarios": {"low": low_scenarios, "high": high_scenarios},
        "artifacts": {
            "low": analyze_task_hierarchy(low_layout, low_scenarios, h),
            "high": analyze_task_hierarchy(high_layout, high_scenarios, h),
        },
    }


class TestHierarchicalAnalysis:
    def test_wcet_measured_on_stack(self, analyzed):
        low = analyzed["artifacts"]["low"]
        # The stack WCET exceeds an L2-latency-free lower bound and is
        # below an every-access-misses-everything upper bound.
        assert low.wcet.cycles > 0
        assert low.l1.wcet.cycles > 0
        assert low.l2.wcet.cycles > 0

    def test_per_level_artifacts_use_their_geometry(self, analyzed):
        low = analyzed["artifacts"]["low"]
        h = analyzed["hierarchy"]
        # L2 blocks are 32B, so the L2 footprint has at most as many blocks.
        assert len(low.l2.footprint) <= len(low.l1.footprint)
        for block in low.l1.footprint:
            assert block % h.l1.line_size == 0
        for block in low.l2.footprint:
            assert block % h.l2.line_size == 0

    def test_cpre_combines_levels(self, analyzed):
        crpd = HierarchicalCRPD(analyzed["artifacts"])
        h = analyzed["hierarchy"]
        for approach in ALL_APPROACHES:
            l1_lines, l2_lines = crpd.lines_reloaded("low", "high", approach)
            assert crpd.cpre("low", "high", approach) == (
                l1_lines * h.l1.miss_penalty + l2_lines * h.l2.miss_penalty
            )
            assert crpd.cpre_l1_only("low", "high", approach) <= crpd.cpre(
                "low", "high", approach
            )

    def test_approach_ordering_per_level(self, analyzed):
        crpd = HierarchicalCRPD(analyzed["artifacts"])
        lines = {
            a: crpd.lines_reloaded("low", "high", a) for a in ALL_APPROACHES
        }
        for level in (0, 1):
            assert lines[Approach.COMBINED][level] <= lines[Approach.INTERTASK][level]
            assert lines[Approach.COMBINED][level] <= lines[Approach.LEE][level]
            assert lines[Approach.INTERTASK][level] <= lines[Approach.BUSQUETS][level]

    def test_mixed_hierarchies_rejected(self, analyzed):
        other = HierarchyConfig(
            l1=CacheConfig(num_sets=4, ways=2, line_size=16, miss_penalty=10),
            l2=CacheConfig(num_sets=32, ways=4, line_size=32, miss_penalty=40),
        )
        layout = SystemLayout(base_address=0x80000)
        program, scenarios = build_stream("odd", 16)
        odd = analyze_task_hierarchy(layout.place(program), scenarios, other)
        with pytest.raises(ValueError, match="hierarchy"):
            HierarchicalCRPD({**analyzed["artifacts"], "odd": odd})

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            HierarchicalCRPD({})

    def test_empty_scenarios_rejected(self, analyzed):
        with pytest.raises(ValueError, match="scenario"):
            measure_wcet_hierarchy(
                analyzed["layouts"]["low"], {}, analyzed["hierarchy"]
            )


class TestEmpiricalSoundness:
    def test_cpre_bounds_measured_preemption_cost(self, analyzed):
        """Measured extra cycles of the preempted task caused by one real
        preemption never exceed the combined-level Cpre bound."""
        h = analyzed["hierarchy"]
        crpd = HierarchicalCRPD(analyzed["artifacts"])
        low_layout = analyzed["layouts"]["low"]
        high_layout = analyzed["layouts"]["high"]
        low_inputs = analyzed["scenarios"]["low"]["d"]
        high_inputs = analyzed["scenarios"]["high"]["d"]

        def run_low(preempt_at: int | None) -> int:
            stack = MemoryHierarchy(h)
            machine = Machine(layout=low_layout, cache=stack)
            machine.write_array("data", low_inputs["data"])
            steps = 0
            while not machine.halted:
                machine.step()
                steps += 1
                if preempt_at is not None and steps == preempt_at:
                    intruder = Machine(layout=high_layout, cache=stack)
                    intruder.write_array("data", high_inputs["data"])
                    intruder.run()
            return machine.cycles

        baseline = run_low(None)
        for preempt_at in (30, 120, 400):
            preempted_cycles = run_low(preempt_at)
            extra = preempted_cycles - baseline
            for approach in ALL_APPROACHES:
                bound = crpd.cpre("low", "high", approach)
                assert extra <= bound, (preempt_at, approach, extra, bound)
