"""Guard layer: budgets, ledger, error taxonomy and fault injection.

The fault-injection half drives the pipeline with the adversarial inputs
from :mod:`tests.faults` and asserts the robustness invariant: every run
returns either a sound bound whose ledger names the tripped budget, or a
typed :class:`~repro.errors.ReproError` — never a bare traceback.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.analysis import (
    Approach,
    CRPDAnalyzer,
    analyze_task,
    approach4_lines,
    conservative_approach4_lines,
)
from repro.analysis.pathcost import PathCostResult
from repro.cache import CacheConfig, CacheState
from repro.errors import (
    BudgetExceeded,
    ConfigError,
    DivergenceError,
    PathExplosionError,
    ReproError,
    SimulationError,
    error_kind,
)
from repro.guard import AnalysisBudget, DegradationLedger, GuardedPipeline
from repro.program import SystemLayout
from repro.sched import Simulator, TaskBinding
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt

from tests.conftest import make_streaming_program
from tests.faults import (
    DEGENERATE_GEOMETRIES,
    INVALID_GEOMETRIES,
    exploding_scenarios,
    make_divergent_system,
    make_exploding_program,
)

BRANCHES = 6  # 2**6 = 64 feasible paths: cheap to build, easy to blow.


@pytest.fixture(scope="module")
def shared_config():
    return CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)


@pytest.fixture(scope="module")
def shared_layouts():
    layout = SystemLayout()
    return {
        "bomb": layout.place(make_exploding_program(branches=BRANCHES)),
        "victim": layout.place(
            make_streaming_program("victim", words=32, reps=2)
        ),
    }


def analyze_victim(shared_layouts, config, **kwargs):
    return analyze_task(
        shared_layouts["victim"],
        {"default": {"data": list(range(32))}},
        config,
        **kwargs,
    )


def analyze_bomb(shared_layouts, config, **kwargs):
    return analyze_task(
        shared_layouts["bomb"], exploding_scenarios(BRANCHES), config, **kwargs
    )


# ----------------------------------------------------------------------
# AnalysisBudget / BudgetClock
# ----------------------------------------------------------------------
class TestAnalysisBudget:
    def test_defaults_are_valid(self):
        budget = AnalysisBudget()
        assert budget.max_paths == 4096
        assert not budget.strict

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_paths=0),
            dict(max_wcrt_iterations=0),
            dict(wall_clock_seconds=0.0),
            dict(wall_clock_seconds=-1.0),
            dict(max_sim_steps=0),
            dict(max_sim_events=0),
        ],
    )
    def test_invalid_limits_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            AnalysisBudget(**kwargs)
        # ConfigError is also a ValueError for pre-taxonomy callers.
        with pytest.raises(ValueError):
            AnalysisBudget(**kwargs)

    def test_unlimited_never_trips(self):
        budget = AnalysisBudget.unlimited()
        clock = budget.start()
        assert not clock.expired
        clock.check("anything")  # must not raise

    def test_clock_expiry_raises_typed_budget_error(self):
        budget = AnalysisBudget(wall_clock_seconds=1e-6)
        clock = budget.start()
        time.sleep(0.002)
        assert clock.expired
        with pytest.raises(BudgetExceeded) as info:
            clock.check("wcet:demo")
        assert info.value.budget == "wall_clock_seconds"
        assert info.value.stage == "wcet:demo"
        assert info.value.exit_code == 3

    def test_clock_without_deadline_never_expires(self):
        clock = AnalysisBudget(wall_clock_seconds=None).start()
        assert not clock.expired
        clock.check("anywhere")


# ----------------------------------------------------------------------
# DegradationLedger
# ----------------------------------------------------------------------
class TestDegradationLedger:
    def test_fresh_ledger_is_exact(self):
        ledger = DegradationLedger()
        assert not ledger.degraded
        assert ledger.soundness == "exact"
        assert ledger.describe() == "exact: no degradations"
        assert ledger.tripped_budgets() == frozenset()

    def test_recording_flips_to_conservative(self):
        ledger = DegradationLedger()
        event = ledger.record(
            stage="crpd:a<-b",
            budget="max_paths",
            reason="too many paths",
            fallback="mumbs_ciip",
        )
        assert ledger.degraded
        assert ledger.soundness == "conservative"
        assert ledger.tripped_budgets() == frozenset({"max_paths"})
        assert "crpd:a<-b" in event.describe()
        assert "max_paths" in ledger.describe()

    def test_for_stage_matches_exact_and_colon_prefix(self):
        ledger = DegradationLedger()
        ledger.record(stage="crpd:a<-b", budget="x", reason="r", fallback="f")
        ledger.record(stage="crpd", budget="x", reason="r", fallback="f")
        ledger.record(stage="crpdx:y", budget="x", reason="r", fallback="f")
        assert len(ledger.for_stage("crpd")) == 2
        assert len(ledger.for_stage("crpd:a<-b")) == 1
        assert ledger.for_stage("paths") == []

    def test_merge_appends_and_returns_self(self):
        a, b = DegradationLedger(), DegradationLedger()
        b.record(stage="s", budget="b", reason="r", fallback="f")
        assert a.merge(b) is a
        assert a.degraded and len(a.events) == 1


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_kinds_and_exit_codes(self):
        cases = [
            (ReproError("x"), "error", 1),
            (ConfigError("x"), "config", 2),
            (BudgetExceeded("x"), "budget", 3),
            (PathExplosionError("x"), "budget", 3),
            (DivergenceError("x"), "divergence", 4),
            (SimulationError("x"), "simulation", 5),
        ]
        for error, kind, code in cases:
            assert error_kind(error) == kind
            assert error.exit_code == code
        # Exit codes are distinct per taxonomy branch.
        assert len({code for _, _, code in cases[1:]}) == 4

    def test_backward_compatible_bases(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(DivergenceError, RuntimeError)
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(PathExplosionError, BudgetExceeded)
        for klass in (ConfigError, BudgetExceeded, DivergenceError, SimulationError):
            assert issubclass(klass, ReproError)

    def test_budget_error_carries_axis_and_stage(self):
        error = PathExplosionError("boom", stage="paths:demo")
        assert error.budget == "max_paths"
        assert error.stage == "paths:demo"


# ----------------------------------------------------------------------
# Fault: path explosion
# ----------------------------------------------------------------------
class TestPathExplosionFault:
    def test_unbudgeted_enumeration_succeeds(self, shared_layouts, shared_config):
        artifacts = analyze_bomb(shared_layouts, shared_config)
        assert len(artifacts.path_profiles) == 2**BRANCHES
        assert artifacts.path_enumeration_complete

    def test_nonstrict_budget_degrades_with_ledger(
        self, shared_layouts, shared_config
    ):
        budget = AnalysisBudget(max_paths=16)
        ledger = DegradationLedger()
        artifacts = analyze_bomb(
            shared_layouts, shared_config, budget=budget, ledger=ledger
        )
        assert not artifacts.path_enumeration_complete
        assert artifacts.path_profiles == []
        assert ledger.soundness == "conservative"
        assert ledger.tripped_budgets() == frozenset({"max_paths"})
        assert ledger.for_stage("paths:bomb")

    def test_strict_budget_raises_typed_error(self, shared_layouts, shared_config):
        budget = AnalysisBudget(max_paths=16, strict=True)
        with pytest.raises(PathExplosionError):
            analyze_bomb(shared_layouts, shared_config, budget=budget)

    def test_degraded_crpd_uses_conservative_ladder(
        self, shared_layouts, shared_config
    ):
        budget = AnalysisBudget(max_paths=16)
        ledger = DegradationLedger()
        bomb = analyze_bomb(
            shared_layouts, shared_config, budget=budget, ledger=ledger
        )
        victim = analyze_victim(
            shared_layouts, shared_config, budget=budget, ledger=ledger
        )
        crpd = CRPDAnalyzer(
            {"bomb": bomb, "victim": victim}, budget=budget, ledger=ledger
        )
        estimate = crpd.estimate_pair("victim", "bomb")
        expected = conservative_approach4_lines(victim, bomb, "per_point")
        assert estimate.lines[Approach.COMBINED] == expected
        # Degraded Approach 4 never exceeds Approaches 2 and 3.
        assert estimate.lines[Approach.COMBINED] <= estimate.lines[Approach.INTERTASK]
        assert estimate.lines[Approach.COMBINED] <= estimate.lines[Approach.LEE]
        assert crpd.soundness == "conservative"
        assert ledger.for_stage("crpd:victim<-bomb")

    def test_strict_crpd_refuses_degradation(self, shared_layouts, shared_config):
        bomb = analyze_bomb(
            shared_layouts, shared_config, budget=AnalysisBudget(max_paths=16)
        )
        victim = analyze_victim(shared_layouts, shared_config)
        crpd = CRPDAnalyzer(
            {"bomb": bomb, "victim": victim},
            budget=AnalysisBudget(max_paths=16, strict=True),
        )
        with pytest.raises(BudgetExceeded) as info:
            crpd.lines_reloaded("victim", "bomb", Approach.COMBINED)
        assert info.value.budget == "max_paths"


# ----------------------------------------------------------------------
# Fault: wall-clock exhaustion
# ----------------------------------------------------------------------
class TestWallClockFault:
    def test_wcet_stage_has_no_fallback(self, shared_layouts, shared_config):
        budget = AnalysisBudget(wall_clock_seconds=1e-6)
        time.sleep(0.002)
        clock = budget.start()
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as info:
            analyze_victim(
                shared_layouts, shared_config, budget=budget, clock=clock
            )
        assert info.value.budget == "wall_clock_seconds"

    def test_crpd_degrades_on_expired_clock(self, shared_layouts, shared_config):
        victim = analyze_victim(shared_layouts, shared_config)
        bomb = analyze_bomb(shared_layouts, shared_config)
        budget = AnalysisBudget(wall_clock_seconds=1e-6)
        clock = budget.start()
        time.sleep(0.002)
        crpd = CRPDAnalyzer(
            {"bomb": bomb, "victim": victim}, budget=budget, clock=clock
        )
        estimate = crpd.estimate_pair("victim", "bomb")
        assert estimate.lines[Approach.COMBINED] == conservative_approach4_lines(
            victim, bomb, "per_point"
        )
        assert crpd.ledger.tripped_budgets() == frozenset({"wall_clock_seconds"})


# ----------------------------------------------------------------------
# Fault: degenerate and invalid cache geometries
# ----------------------------------------------------------------------
class TestGeometryFaults:
    @pytest.mark.parametrize(
        "config", DEGENERATE_GEOMETRIES, ids=lambda c: f"s{c.num_sets}w{c.ways}"
    )
    def test_degenerate_geometries_yield_sound_exact_bounds(self, config):
        layout = SystemLayout()
        low = layout.place(make_streaming_program("low", words=12, reps=2))
        high = layout.place(make_streaming_program("high", words=8, reps=1))
        low_art = analyze_task(low, {"d": {"data": list(range(12))}}, config)
        high_art = analyze_task(high, {"d": {"data": list(range(8))}}, config)
        crpd = CRPDAnalyzer({"low": low_art, "high": high_art})
        estimate = crpd.estimate_pair("low", "high")
        lines = estimate.lines
        assert all(count >= 0 for count in lines.values())
        assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
        assert lines[Approach.COMBINED] <= lines[Approach.LEE]
        # No way can hold more reloads than the cache has lines.
        capacity = config.num_sets * config.ways
        assert lines[Approach.LEE] <= capacity
        assert lines[Approach.COMBINED] <= capacity
        assert crpd.soundness == "exact"

    @pytest.mark.parametrize("kwargs", INVALID_GEOMETRIES)
    def test_invalid_geometries_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


# ----------------------------------------------------------------------
# Fault: empty path sets (zero-path preemptors)
# ----------------------------------------------------------------------
class TestEmptyPathSet:
    def make_pathless(self, shared_layouts, shared_config):
        artifacts = analyze_victim(shared_layouts, shared_config)
        return dataclasses.replace(artifacts, path_profiles=[])

    def test_zero_paths_contribute_zero_lines(self, shared_layouts, shared_config):
        preempted = analyze_bomb(shared_layouts, shared_config)
        pathless = self.make_pathless(shared_layouts, shared_config)
        for mode in ("paper", "per_point"):
            assert approach4_lines(preempted, pathless, mumbs_mode=mode) == 0

    def test_strict_mode_keeps_it_fatal(self, shared_layouts, shared_config):
        preempted = analyze_bomb(shared_layouts, shared_config)
        pathless = self.make_pathless(shared_layouts, shared_config)
        with pytest.raises(ConfigError, match="no feasible paths"):
            approach4_lines(preempted, pathless, strict=True)

    def test_empty_path_cost_result(self):
        result = PathCostResult(per_path=[])
        assert result.lines == 0
        with pytest.raises(ConfigError):
            result.lines_strict()
        with pytest.raises(ValueError):
            _ = result.worst


# ----------------------------------------------------------------------
# Fault: runaway simulation
# ----------------------------------------------------------------------
class TestSimulationFault:
    def build_simulator(self, shared_layouts, shared_config):
        spec = TaskSpec("victim", wcet=500, period=100_000, priority=1)
        binding = TaskBinding(
            spec=spec,
            layout=shared_layouts["victim"],
            inputs={"data": list(range(32))},
        )
        return Simulator([binding], CacheState(shared_config))

    def test_step_budget_raises_simulation_error(
        self, shared_layouts, shared_config
    ):
        simulator = self.build_simulator(shared_layouts, shared_config)
        with pytest.raises(SimulationError):
            simulator.run(1000, budget=AnalysisBudget(max_sim_steps=10))

    def test_event_budget_raises_simulation_error(
        self, shared_layouts, shared_config
    ):
        simulator = self.build_simulator(shared_layouts, shared_config)
        with pytest.raises(SimulationError):
            simulator.run(1000, budget=AnalysisBudget(max_sim_events=1))

    def test_generous_budget_completes(self, shared_layouts, shared_config):
        simulator = self.build_simulator(shared_layouts, shared_config)
        result = simulator.run(1000, budget=AnalysisBudget())
        assert result.jobs


# ----------------------------------------------------------------------
# GuardedPipeline end-to-end
# ----------------------------------------------------------------------
class TestGuardedPipeline:
    def build_system(self, pipeline):
        bomb_wcet = pipeline.artifacts["bomb"].wcet.cycles
        victim_wcet = pipeline.artifacts["victim"].wcet.cycles
        return TaskSystem(
            tasks=[
                TaskSpec("bomb", wcet=bomb_wcet, period=20 * bomb_wcet, priority=1),
                TaskSpec(
                    "victim",
                    wcet=victim_wcet,
                    period=40 * (bomb_wcet + victim_wcet),
                    priority=2,
                ),
            ]
        )

    def test_crpd_before_analyze_is_config_error(self, shared_config):
        with pytest.raises(ConfigError):
            _ = GuardedPipeline(shared_config).crpd

    def test_exact_end_to_end(self, shared_layouts, shared_config):
        pipeline = GuardedPipeline(shared_config)
        pipeline.analyze(
            "bomb", shared_layouts["bomb"], exploding_scenarios(BRANCHES)
        )
        pipeline.analyze(
            "victim", shared_layouts["victim"], {"d": {"data": list(range(32))}}
        )
        wcrt = pipeline.system_wcrt(self.build_system(pipeline))
        assert wcrt.soundness == "exact"
        assert pipeline.soundness == "exact"
        assert wcrt.ledger is pipeline.ledger

    def test_degraded_end_to_end_carries_audit_trail(
        self, shared_layouts, shared_config
    ):
        pipeline = GuardedPipeline(shared_config, AnalysisBudget(max_paths=4))
        pipeline.analyze(
            "bomb", shared_layouts["bomb"], exploding_scenarios(BRANCHES)
        )
        pipeline.analyze(
            "victim", shared_layouts["victim"], {"d": {"data": list(range(32))}}
        )
        wcrt = pipeline.system_wcrt(self.build_system(pipeline))
        assert wcrt.soundness == "conservative"
        assert "max_paths" in wcrt.ledger.tripped_budgets()
        assert wcrt.ledger.for_stage("paths:bomb")
        assert wcrt.ledger.for_stage("crpd:victim<-bomb")


# ----------------------------------------------------------------------
# The acceptance invariant: every injected fault is guarded
# ----------------------------------------------------------------------
class TestRobustnessInvariant:
    """Every fault yields a ledger-audited sound result or a typed error."""

    def run_fault(self, run):
        try:
            return run()
        except ReproError as error:
            return error
        except Exception as error:  # pragma: no cover - the failure mode
            pytest.fail(f"unguarded failure escaped the pipeline: {error!r}")

    def test_all_faults_are_guarded(self, shared_layouts, shared_config):
        def path_explosion_degraded():
            pipeline = GuardedPipeline(shared_config, AnalysisBudget(max_paths=2))
            pipeline.analyze(
                "bomb", shared_layouts["bomb"], exploding_scenarios(BRANCHES)
            )
            return pipeline.ledger

        def path_explosion_strict():
            pipeline = GuardedPipeline(
                shared_config, AnalysisBudget(max_paths=2, strict=True)
            )
            pipeline.analyze(
                "bomb", shared_layouts["bomb"], exploding_scenarios(BRANCHES)
            )
            return pipeline.ledger

        def divergent_task_set():
            return compute_system_wcrt(
                make_divergent_system(),
                stop_at_deadline=False,
                budget=AnalysisBudget(max_wcrt_iterations=50),
            ).ledger

        def divergent_task_set_strict():
            return compute_system_wcrt(
                make_divergent_system(),
                stop_at_deadline=False,
                budget=AnalysisBudget(max_wcrt_iterations=50, strict=True),
            ).ledger

        def runaway_simulation():
            simulator = TestSimulationFault().build_simulator(
                shared_layouts, shared_config
            )
            simulator.run(1000, budget=AnalysisBudget(max_sim_steps=5))

        def invalid_geometry():
            CacheConfig(num_sets=3, ways=2, line_size=16, miss_penalty=20)

        faults = [
            path_explosion_degraded,
            path_explosion_strict,
            divergent_task_set,
            divergent_task_set_strict,
            runaway_simulation,
            invalid_geometry,
        ]
        saw_degradation = saw_typed_error = False
        for fault in faults:
            outcome = self.run_fault(fault)
            if isinstance(outcome, ReproError):
                saw_typed_error = True
                assert error_kind(outcome) in (
                    "config",
                    "budget",
                    "divergence",
                    "simulation",
                )
            else:
                assert outcome is not None
                if outcome.soundness == "conservative":
                    saw_degradation = True
                    assert outcome.tripped_budgets()
                else:
                    assert outcome.soundness == "exact"
        assert saw_degradation and saw_typed_error
