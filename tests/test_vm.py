"""Unit tests for the cycle-level virtual machine."""

import pytest

from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.program.instructions import BASE_CYCLES
from repro.vm import Machine, TraceRecorder, VMError, run_isolated


def build_and_place(builder_fn, name="p"):
    b = ProgramBuilder(name)
    builder_fn(b)
    program = b.build()
    return SystemLayout().place(program)


def fresh_cache(miss=20):
    return CacheState(CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=miss))


class TestExecutionSemantics:
    def test_arithmetic_program(self):
        def body(b):
            out = b.array("out", words=4)
            b.const("a", 10)
            b.const("b", 3)
            b.binop("s", "add", "a", "b")
            b.binop("d", "sub", "a", "b")
            b.binop("m", "mul", "a", "b")
            b.binop("q", "div", "a", "b")
            b.store("s", out, index=0)
            b.store("d", out, index=1)
            b.store("m", out, index=2)
            b.store("q", out, index=3)

        layout = build_and_place(body)
        machine = run_isolated(layout, fresh_cache())
        assert machine.read_array("out") == [13, 7, 30, 3]

    def test_load_store_roundtrip(self):
        def body(b):
            data = b.array("data", words=3)
            out = b.array("out", words=3)
            with b.loop(3) as i:
                b.load("v", data, index=i)
                b.binop("v", "mul", "v", "v")
                b.store("v", out, index=i)

        layout = build_and_place(body)
        machine = run_isolated(layout, fresh_cache(), inputs={"data": [2, 3, 4]})
        assert machine.read_array("out") == [4, 9, 16]

    def test_uninitialised_memory_reads_zero(self):
        def body(b):
            data = b.array("data", words=1)
            out = b.array("out", words=1)
            b.load("v", data, index=0)
            b.store("v", out, index=0)

        layout = build_and_place(body)
        machine = run_isolated(layout, fresh_cache())
        assert machine.read_array("out") == [0]

    def test_unset_register_raises(self):
        def body(b):
            out = b.array("out", words=1)
            b.store("ghost", out, index=0)

        layout = build_and_place(body)
        with pytest.raises(VMError, match="unset register"):
            run_isolated(layout, fresh_cache())

    def test_division_by_zero_raises(self):
        def body(b):
            b.const("z", 0)
            b.binop("x", "div", 1, "z")

        layout = build_and_place(body)
        with pytest.raises(VMError, match="division by zero"):
            run_isolated(layout, fresh_cache())

    def test_out_of_bounds_access_raises(self):
        def body(b):
            data = b.array("data", words=4)
            b.const("i", 10)
            b.load("v", data, index="i")

        layout = build_and_place(body)
        with pytest.raises(VMError, match="out of bounds"):
            run_isolated(layout, fresh_cache())

    def test_runaway_guard(self):
        def body(b):
            with b.loop(1000):
                b.const("x", 1)

        layout = build_and_place(body)
        with pytest.raises(VMError, match="exceeded"):
            run_isolated(layout, fresh_cache(), max_steps=100)

    def test_step_after_halt_raises(self):
        def body(b):
            b.const("x", 1)

        layout = build_and_place(body)
        machine = run_isolated(layout, fresh_cache())
        assert machine.halted
        with pytest.raises(VMError, match="halted"):
            machine.step()

    def test_write_array_too_long_rejected(self):
        def body(b):
            b.array("data", words=2)
            b.const("x", 1)

        layout = build_and_place(body)
        machine = Machine(layout=layout, cache=fresh_cache())
        with pytest.raises(VMError, match="exceed"):
            machine.write_array("data", [1, 2, 3])


class TestCycleAccounting:
    def test_single_instruction_cost(self):
        def body(b):
            b.const("x", 1)

        layout = build_and_place(body)
        machine = Machine(layout=layout, cache=fresh_cache(miss=20))
        result = machine.step()
        # Const base cost + one instruction-fetch miss.
        assert result.cycles == BASE_CYCLES["const"] + 20

    def test_second_fetch_in_same_block_hits(self):
        def body(b):
            b.const("x", 1)
            b.const("y", 2)

        layout = build_and_place(body)
        machine = Machine(layout=layout, cache=fresh_cache(miss=20))
        machine.step()
        second = machine.step()  # same 16B code block: fetch hits
        assert second.cycles == BASE_CYCLES["const"]

    def test_load_charges_fetch_and_data(self):
        def body(b):
            data = b.array("data", words=1)
            b.load("v", data, index=0)

        layout = build_and_place(body)
        machine = Machine(layout=layout, cache=fresh_cache(miss=20))
        result = machine.step()
        # load base + fetch miss + data miss.
        assert result.cycles == BASE_CYCLES["load"] + 20 + 20

    def test_zero_miss_penalty(self):
        def body(b):
            data = b.array("data", words=4)
            with b.loop(4) as i:
                b.load("v", data, index=i)

        layout = build_and_place(body)
        cache = CacheState(
            CacheConfig(num_sets=16, ways=2, line_size=16, miss_penalty=0)
        )
        machine = run_isolated(layout, cache)
        # With zero penalty, cycles equal the sum of base costs.
        base_only = machine.cycles
        machine2 = run_isolated(build_and_place(body, "p"), fresh_cache(miss=20))
        assert machine2.cycles > base_only

    def test_warm_cache_never_slower(self):
        def body(b):
            data = b.array("data", words=32)
            with b.loop(32) as i:
                b.load("v", data, index=i)

        layout = build_and_place(body)
        cold = run_isolated(layout, fresh_cache())
        warm_cache = fresh_cache()
        run_isolated(layout, warm_cache)  # first run warms the cache
        warm = run_isolated(layout, warm_cache)
        assert warm.cycles <= cold.cycles

    def test_cycles_accumulate(self):
        def body(b):
            b.const("x", 1)
            b.const("y", 2)

        layout = build_and_place(body)
        machine = Machine(layout=layout, cache=fresh_cache())
        total = 0
        while not machine.halted:
            total += machine.step().cycles
        assert machine.cycles == total
        assert machine.steps == 3  # two consts + halt


class TestTracing:
    def test_trace_records_code_and_data(self):
        def body(b):
            data = b.array("data", words=1)
            out = b.array("out", words=1)
            b.load("v", data, index=0)
            b.store("v", out, index=0)

        layout = build_and_place(body)
        trace = TraceRecorder()
        run_isolated(layout, fresh_cache(), trace=trace)
        kinds = [e.kind for e in trace.events]
        assert kinds.count("read") == 1
        assert kinds.count("write") == 1
        assert kinds.count("code") == 3  # load, store, halt

    def test_trace_nodes_match_blocks(self):
        def body(b):
            with b.loop(2):
                b.const("x", 1)

        layout = build_and_place(body)
        trace = TraceRecorder()
        run_isolated(layout, fresh_cache(), trace=trace)
        labels = {e.node for e in trace.events}
        assert labels <= set(layout.program.cfg.labels())

    def test_trace_can_exclude_code(self):
        def body(b):
            data = b.array("data", words=1)
            b.load("v", data, index=0)

        layout = build_and_place(body)
        trace = TraceRecorder(record_code=False)
        run_isolated(layout, fresh_cache(), trace=trace)
        assert all(e.kind != "code" for e in trace.events)
        assert len(trace) == 1

    def test_trace_addresses_within_regions(self):
        def body(b):
            data = b.array("data", words=4)
            with b.loop(4) as i:
                b.load("v", data, index=i)

        layout = build_and_place(body)
        trace = TraceRecorder()
        run_isolated(layout, fresh_cache(), trace=trace)
        for event in trace.events:
            if event.kind == "code":
                assert layout.code_base <= event.address < layout.code_end
            else:
                assert layout.data_base <= event.address < layout.data_end


class TestResumability:
    def test_interleaved_execution_preserves_results(self):
        """Two machines stepped alternately produce the same results as
        isolated runs — the property preemptive scheduling relies on."""

        def body_a(b):
            out = b.array("out", words=1)
            b.const("acc", 0)
            with b.loop(10):
                b.add("acc", "acc", 2)
            b.store("acc", out, index=0)

        def body_b(b):
            out = b.array("out", words=1)
            b.const("acc", 1)
            with b.loop(10):
                b.mul("acc", "acc", 2)
            b.store("acc", out, index=0)

        layout_sys = SystemLayout()
        ba = ProgramBuilder("a")
        body_a(ba)
        bb = ProgramBuilder("b")
        body_b(bb)
        layout_a = layout_sys.place(ba.build())
        layout_b = layout_sys.place(bb.build())
        shared = fresh_cache()
        ma = Machine(layout=layout_a, cache=shared)
        mb = Machine(layout=layout_b, cache=shared)
        while not (ma.halted and mb.halted):
            if not ma.halted:
                ma.step()
            if not mb.halted:
                mb.step()
        assert ma.read_array("out") == [20]
        assert mb.read_array("out") == [1024]

    def test_shared_memory_dict_persists(self):
        def body(b):
            counter = b.array("counter", words=1)
            b.load("c", counter, index=0)
            b.add("c", "c", 1)
            b.store("c", counter, index=0)

        layout = build_and_place(body)
        memory: dict[int, int] = {}
        for expected in (1, 2, 3):
            machine = Machine(layout=layout, cache=fresh_cache(), memory=memory)
            machine.run()
            assert machine.read_array("counter") == [expected]
