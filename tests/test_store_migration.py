"""Schema migration: v1 monolithic cache entries are stale, not fatal.

Schema 1 of the artifact store pickled bare ``CachedAnalysis`` bundles;
schema 2 wraps sub-artifacts in the :class:`StoredEntry` envelope.  A
cache directory written by an older version must degrade gracefully: a
v1 entry squatting on a current key is a *stale* counted miss (distinct
from ``corrupt``, so migrations show up in telemetry), the file is
deleted, the analysis recomputes, and the slot heals — never an error,
never a silently wrong result.
"""

from __future__ import annotations

import pickle

from repro.analysis import analyze_task
from repro.analysis.store import ArtifactStore, CachedAnalysis, StoredEntry
from repro.obs import observed
from repro.program import SystemLayout

from tests.conftest import make_streaming_program


def _case(tmp_path, config):
    program = make_streaming_program("mig", words=16, reps=1)
    layout = SystemLayout().place(program)
    scenarios = {"s": {"data": list(range(16))}}
    store = ArtifactStore(directory=tmp_path)
    cold = analyze_task(layout, scenarios, config, store=store)
    entries = sorted(tmp_path.glob("*.pkl"))
    assert len(entries) == 4  # trace, sim, flow, paths
    return layout, scenarios, entries, cold


def _plant_v1(entry) -> None:
    """Overwrite *entry* with what schema 1 wrote: a bare monolithic
    ``CachedAnalysis`` pickle, no envelope."""
    entry.write_bytes(
        pickle.dumps(
            CachedAnalysis(artifacts=None), protocol=pickle.HIGHEST_PROTOCOL
        )
    )


def test_v1_entries_are_counted_stale_misses_and_heal(
    tmp_path, tiny_cache_config
):
    layout, scenarios, entries, cold = _case(tmp_path, tiny_cache_config)
    for entry in entries:
        _plant_v1(entry)

    with observed() as (_, metrics):
        store = ArtifactStore(directory=tmp_path)
        warm = analyze_task(layout, scenarios, tiny_cache_config, store=store)

    # Three stale reads (trace/flow/paths; sim is skipped once the trace
    # lookup misses), zero corruption, zero hits — and honest counting.
    assert store.hits == 0
    assert (store.stale, store.corrupt) == (3, 0)
    assert store.gets == store.hits + store.misses
    assert metrics.to_dict()["counters"]["store.stale"] == 3
    # The recomputation is a full, correct cold run.
    assert warm.wcet.cycles == cold.wcet.cycles
    assert warm.footprint == cold.footprint
    # The v1 files were replaced: the next lookup is all hits again.
    retry = ArtifactStore(directory=tmp_path)
    analyze_task(layout, scenarios, tiny_cache_config, store=retry)
    assert retry.stale == 0
    assert retry.hits_by_kind == {"trace": 1, "sim": 1, "flow": 1, "paths": 1}


def test_wrong_schema_envelope_is_stale(tmp_path, tiny_cache_config):
    """A ``StoredEntry`` with a superseded schema number is equally stale
    — the envelope alone is not enough, the version must match."""
    layout, scenarios, entries, _ = _case(tmp_path, tiny_cache_config)
    for entry in entries:
        entry.write_bytes(
            pickle.dumps(
                StoredEntry(
                    schema=1,
                    kind="task",
                    payload=CachedAnalysis(artifacts=None),
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
    store = ArtifactStore(directory=tmp_path)
    analyze_task(layout, scenarios, tiny_cache_config, store=store)
    assert (store.stale, store.corrupt, store.hits) == (3, 0, 0)


def test_kind_collision_is_stale_not_a_wrong_payload(
    tmp_path, tiny_cache_config
):
    """An entry of the *right* schema but the wrong kind (e.g. a paths
    bundle squatting on a trace key) must never be returned as a hit."""
    layout, scenarios, entries, cold = _case(tmp_path, tiny_cache_config)
    payloads = [pickle.loads(e.read_bytes()) for e in entries]
    by_kind = {p.kind: (e, p) for e, p in zip(entries, payloads)}
    trace_entry, _ = by_kind["trace"]
    _, paths_payload = by_kind["paths"]
    trace_entry.write_bytes(
        pickle.dumps(paths_payload, protocol=pickle.HIGHEST_PROTOCOL)
    )

    store = ArtifactStore(directory=tmp_path)
    warm = analyze_task(layout, scenarios, tiny_cache_config, store=store)
    assert store.stale == 1
    assert warm.wcet.cycles == cold.wcet.cycles
