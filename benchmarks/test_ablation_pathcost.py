"""Ablation: Equation 3 vs Equation 4 — what Section VI path analysis buys.

Equation 3 intersects the preempted task's MUMBS with the preempting
task's *whole* footprint; Equation 4 restricts the preempting side to one
feasible path and takes the worst path.  For single-path preemptors the
two coincide; for ED (two operator paths) Equation 4 must be tighter.
"""

from conftest import write_artifact

from repro.analysis.intertask import eq3_lines
from repro.analysis.pathcost import approach4_lines
from repro.experiments.reporting import Table


def _gaps(context):
    rows = []
    order = list(context.priority_order)
    for low_index in range(len(order) - 1, 0, -1):
        preempted_name = order[low_index]
        for preempting_name in order[:low_index]:
            preempted = context.artifacts[preempted_name]
            preempting = context.artifacts[preempting_name]
            eq3 = eq3_lines(preempted, preempting)
            eq4 = approach4_lines(preempted, preempting, mumbs_mode="paper")
            paths = len(preempting.path_profiles)
            rows.append(
                (f"{preempted_name.upper()} by {preempting_name.upper()}",
                 paths, eq3, eq4)
            )
    return rows


def test_ablation_pathcost(benchmark, context1, context2):
    rows1 = benchmark(_gaps, context1)
    rows2 = _gaps(context2)
    table = Table(
        title="Ablation: Equation 3 (no path analysis) vs Equation 4",
        headers=["Preemption", "paths", "Eq.3 lines", "Eq.4 lines"],
    )
    for name, paths, eq3, eq4 in rows1 + rows2:
        assert eq4 <= eq3, name
        if paths == 1:
            assert eq4 == eq3, f"{name}: single path must make Eq.4 == Eq.3"
        table.add_row(name, paths, eq3, eq4)
    # ED is the only multi-path preemptor; path analysis must help there.
    ed_rows = [r for r in rows1 if "by ED" in r[0]]
    assert ed_rows and all(r[3] < r[2] for r in ed_rows)
    write_artifact("ablation_pathcost.txt", table.render())
