"""Bench: regenerate Figure 2 (cache vs memory address decomposition)."""

from conftest import write_artifact

from repro.cache import CacheConfig
from repro.experiments import figure2_mapping


def _decompose_many(config, count=4096):
    return [config.decompose(address) for address in range(0, count * 4, 4)]


def test_figure2(benchmark, ):
    config = CacheConfig.example2_1k()
    parts = benchmark(_decompose_many, config)
    assert len(parts) == 4096
    text = figure2_mapping()
    assert "cs(1)" in text
    write_artifact("figure2.txt", text)
