"""Ablation: cache geometry sweep — how index span moves the bounds.

Sweeps the number of cache sets (index span) at fixed associativity and
line size, re-analysing Experiment I each time.  With a small span every
footprint wraps and overlaps everything (Approach 2 degenerates towards
Approach 1); with a large span overlaps become partial and the inter-task
analysis starts paying off — the regime the experiments run in.
"""

from conftest import write_artifact

from repro.analysis import Approach
from repro.cache import CacheConfig
from repro.experiments import EXPERIMENT_I_SPEC, build_context
from repro.experiments.reporting import Table

GEOMETRIES = (64, 128, 256, 512)


def _sweep():
    rows = []
    for num_sets in GEOMETRIES:
        cache = CacheConfig(num_sets=num_sets, ways=4, line_size=16, miss_penalty=20)
        context = build_context(EXPERIMENT_I_SPEC, cache=cache)
        estimate = context.crpd.estimate_pair("ofdm", "ed")
        rows.append(
            (
                num_sets,
                cache.size_bytes // 1024,
                estimate.lines[Approach.BUSQUETS],
                estimate.lines[Approach.INTERTASK],
                estimate.lines[Approach.LEE],
                estimate.lines[Approach.COMBINED],
            )
        )
    return rows


def test_ablation_geometry(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        title="Ablation: cache sets sweep (OFDM preempted by ED)",
        headers=["sets", "KB", "App. 1", "App. 2", "App. 3", "App. 4"],
    )
    for row in rows:
        table.add_row(*row)
        num_sets, _, app1, app2, app3, app4 = row
        assert app4 <= min(app2, app3)
        assert app2 <= app1
    # Larger index span (more sets) never increases the per-set-capped
    # Approach 1 usage and relaxes contention in Approach 2.
    app2_values = [row[3] for row in rows]
    assert min(app2_values) < max(app2_values), "sweep must show movement"
    write_artifact("ablation_geometry.txt", table.render())
