"""Bench: regenerate Table III (Experiment I WCRT estimates vs ART)."""

from conftest import write_artifact

from repro.analysis import ALL_APPROACHES, Approach
from repro.experiments import MISS_PENALTIES, table_wcrt
from repro.wcrt import compute_system_wcrt


def _wcrt_sweep(suite):
    """The Equation-7 fixpoint iterations across penalties and approaches."""
    results = {}
    for penalty in MISS_PENALTIES:
        context = suite.context(penalty)
        for approach in ALL_APPROACHES:
            results[(penalty, approach)] = compute_system_wcrt(
                context.system,
                cpre=lambda l, h, a=approach: context.crpd.cpre(l, h, a),
                context_switch=context.spec.context_switch_cycles,
                stop_at_deadline=False,
            )
    return results


def test_table3(benchmark, suite1):
    # Warm the per-penalty contexts and the ART simulations first so the
    # benchmark isolates the WCRT iteration itself.
    for penalty in MISS_PENALTIES:
        suite1.art(penalty)
    results = benchmark(_wcrt_sweep, suite1)

    for penalty in MISS_PENALTIES:
        art = suite1.art(penalty)
        for task in suite1.preempted_tasks():
            for approach in ALL_APPROACHES:
                estimate = results[(penalty, approach)].wcrt(task)
                assert art[task] <= estimate, (task, penalty, approach)
            ours = results[(penalty, Approach.COMBINED)].wcrt(task)
            for other in ALL_APPROACHES:
                assert ours <= results[(penalty, other)].wcrt(task)

    write_artifact("table3.txt", table_wcrt(suite1).render())
