"""Bench: regenerate Figure 1 (schedule with cache reload overhead)."""

from conftest import write_artifact

from repro.cache import CacheState
from repro.experiments import figure1_schedule
from repro.sched import Simulator


def _simulate_schedule(context):
    """A fresh shared-cache simulation over one hyperperiod."""
    simulator = Simulator(
        context.bindings(),
        cache=CacheState(context.config),
        context_switch_cycles=context.spec.context_switch_cycles,
    )
    return simulator.run(context.system.hyperperiod)


def test_figure1(benchmark, context1):
    result = benchmark(_simulate_schedule, context1)
    lowest = context1.priority_order[-1]
    assert result.response_times(lowest)
    assert result.preemption_count(lowest) > 0

    figure = figure1_schedule(context1)
    lowest = context1.priority_order[-1]
    # The paper's Figure 1 message: cache eviction stretches the response
    # past the cache-blind estimate, and Eq.7 restores the bound.
    assert figure.wcrt_without_cache[lowest] < figure.actual_response[lowest]
    assert figure.actual_response[lowest] <= figure.wcrt_with_cache[lowest]
    write_artifact("figure1.txt", figure.render())
