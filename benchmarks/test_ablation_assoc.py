"""Ablation: associativity sweep — the L term in Equation 2.

Equation 2 caps every per-set conflict at the number of ways L.  Sweeping
L at fixed capacity (sets x ways x 16B = 16KB) shows the cap binding for
direct-mapped caches and relaxing as associativity grows.
"""

from conftest import write_artifact

from repro.analysis import Approach
from repro.cache import CacheConfig
from repro.experiments import EXPERIMENT_II_SPEC, build_context
from repro.experiments.reporting import Table

#: (ways, num_sets) pairs at constant 16KB capacity.
GEOMETRIES = ((1, 1024), (2, 512), (4, 256), (8, 128))


def _sweep():
    rows = []
    for ways, num_sets in GEOMETRIES:
        cache = CacheConfig(
            num_sets=num_sets, ways=ways, line_size=16, miss_penalty=20
        )
        context = build_context(EXPERIMENT_II_SPEC, cache=cache)
        estimate = context.crpd.estimate_pair("adpcmc", "adpcmd")
        rows.append(
            (
                ways,
                num_sets,
                estimate.lines[Approach.BUSQUETS],
                estimate.lines[Approach.INTERTASK],
                estimate.lines[Approach.LEE],
                estimate.lines[Approach.COMBINED],
            )
        )
    return rows


def test_ablation_assoc(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        title="Ablation: associativity sweep at 16KB (ADPCMC by ADPCMD)",
        headers=["ways", "sets", "App. 1", "App. 2", "App. 3", "App. 4"],
    )
    for row in rows:
        table.add_row(*row)
        _, _, app1, app2, app3, app4 = row
        assert app4 <= min(app2, app3)
        assert app2 <= app1
    write_artifact("ablation_assoc.txt", table.render())
