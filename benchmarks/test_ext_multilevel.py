"""Extension bench: two-level hierarchy CRPD (the paper's future work).

Runs Experiment I's three tasks on an L1(4KB)+L2(32KB) stack, computes
the per-level reload bounds and the combined Cpre (Eq. 5'), and shows how
much an L1-only analysis would under-charge when memory sits far behind
the L2.
"""

from conftest import write_artifact

from repro.analysis import ALL_APPROACHES, Approach
from repro.analysis.multilevel import HierarchicalCRPD, analyze_task_hierarchy
from repro.cache import CacheConfig, HierarchyConfig
from repro.experiments import EXPERIMENT_I_SPEC
from repro.experiments.reporting import Table
from repro.program import SystemLayout

HIERARCHY = HierarchyConfig(
    l1=CacheConfig(num_sets=64, ways=4, line_size=16, miss_penalty=8),
    l2=CacheConfig(num_sets=256, ways=4, line_size=32, miss_penalty=60),
)


def _analyse():
    spec = EXPERIMENT_I_SPEC
    workloads = {name: build() for name, build in spec.builders.items()}
    layout = SystemLayout(stride=spec.stride)
    for name in spec.placement_order:
        layout.place(workloads[name].program)
    artifacts = {
        name: analyze_task_hierarchy(
            layout.layout_of(name), workloads[name].scenario_map(), HIERARCHY
        )
        for name in spec.priority_order
    }
    return HierarchicalCRPD(artifacts, mumbs_mode="paper"), spec


def test_multilevel_crpd(benchmark):
    crpd, spec = benchmark.pedantic(_analyse, rounds=1, iterations=1)
    table = Table(
        title="Extension: two-level CRPD (Experiment I on L1 4KB + L2 32KB)",
        headers=["Preemption", "Approach", "L1 lines", "L2 lines",
                 "Cpre (Eq.5')", "Cpre (L1-only)"],
        notes=["L1 refill = 8 cycles, L2 miss = 60 cycles"],
    )
    order = list(spec.priority_order)
    for low_index in range(len(order) - 1, 0, -1):
        preempted = order[low_index]
        for preempting in order[:low_index]:
            for approach in ALL_APPROACHES:
                l1_lines, l2_lines = crpd.lines_reloaded(
                    preempted, preempting, approach
                )
                full = crpd.cpre(preempted, preempting, approach)
                l1_only = crpd.cpre_l1_only(preempted, preempting, approach)
                assert l1_only <= full
                table.add_row(
                    f"{preempted.upper()} by {preempting.upper()}",
                    f"App.{approach.value}",
                    l1_lines,
                    l2_lines,
                    full,
                    l1_only,
                )
    # Approach ordering must hold at both levels for every pair.
    for low_index in range(len(order) - 1, 0, -1):
        preempted = order[low_index]
        for preempting in order[:low_index]:
            lines = {
                a: crpd.lines_reloaded(preempted, preempting, a)
                for a in ALL_APPROACHES
            }
            for level in (0, 1):
                assert (
                    lines[Approach.COMBINED][level]
                    <= lines[Approach.INTERTASK][level]
                    <= lines[Approach.BUSQUETS][level]
                )
    write_artifact("ext_multilevel.txt", table.render())
