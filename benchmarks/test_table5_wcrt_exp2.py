"""Bench: regenerate Table V (Experiment II WCRT estimates vs ART)."""

from conftest import write_artifact

from repro.analysis import ALL_APPROACHES, Approach
from repro.experiments import MISS_PENALTIES, table_wcrt


def _collect(suite):
    rows = {}
    for penalty in MISS_PENALTIES:
        for approach in ALL_APPROACHES:
            wcrt = suite.wcrt(penalty, approach)
            for task in suite.preempted_tasks():
                rows[(penalty, approach, task)] = wcrt.wcrt(task)
    return rows


def test_table5(benchmark, suite2):
    rows = benchmark(_collect, suite2)
    for penalty in MISS_PENALTIES:
        art = suite2.art(penalty)
        for task in suite2.preempted_tasks():
            for approach in ALL_APPROACHES:
                assert art[task] <= rows[(penalty, approach, task)]
    # The dramatic Approach-1 blow-up at Cmiss=40 (paper Table V shape).
    assert rows[(40, Approach.BUSQUETS, "adpcmc")] > 1.3 * rows[
        (40, Approach.COMBINED, "adpcmc")
    ]
    write_artifact("table5.txt", table_wcrt(suite2).render())
