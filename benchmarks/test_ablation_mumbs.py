"""Ablation: Definition-4 MUMBS vs the sound per-point joint maximisation.

DESIGN.md calls this out: the paper's Definition 4 picks the execution
point with the *most* useful blocks and only then intersects with the
preempting task; the reproduction found this can under-estimate the worst
preemption point when another point's (smaller) useful set conflicts more
with the preempting task.  This bench quantifies the gap per preemption
pair in both experiments.
"""

from conftest import write_artifact

from repro.analysis import Approach, CRPDAnalyzer
from repro.experiments.reporting import Table


def _both_modes(context):
    paper = CRPDAnalyzer(context.artifacts, mumbs_mode="paper")
    sound = CRPDAnalyzer(context.artifacts, mumbs_mode="per_point")
    rows = []
    order = list(context.priority_order)
    for low_index in range(len(order) - 1, 0, -1):
        preempted = order[low_index]
        for preempting in order[:low_index]:
            rows.append(
                (
                    f"{preempted.upper()} by {preempting.upper()}",
                    paper.lines_reloaded(preempted, preempting, Approach.COMBINED),
                    sound.lines_reloaded(preempted, preempting, Approach.COMBINED),
                )
            )
    return rows


def test_ablation_mumbs(benchmark, context1, context2):
    rows1 = _both_modes(context1)
    rows2 = benchmark(_both_modes, context2)
    table = Table(
        title="Ablation: Definition-4 MUMBS vs sound per-point maximisation",
        headers=["Preemption", "App.4 (Def.4)", "App.4 (per-point, sound)"],
        notes=[
            "per-point >= Def.4 always; a strict gap marks a case where",
            "Definition 4 under-estimates the worst preemption point",
        ],
    )
    for name, paper_lines, sound_lines in rows1 + rows2:
        assert sound_lines >= paper_lines, name
        table.add_row(name, paper_lines, sound_lines)
    # The reproduction's experiments contain at least one strict gap.
    assert any(sound > paper for _, paper, sound in rows1 + rows2)
    write_artifact("ablation_mumbs.txt", table.render())
