"""Shared session fixtures for the benchmark harness.

The expensive artefacts (task analyses, WCRT sweeps, ART simulations) are
built once per session; each bench times the computation it regenerates
and writes its rendered table/figure to ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import (
    EXPERIMENT_I_SPEC,
    EXPERIMENT_II_SPEC,
    ExperimentSuite,
    build_context,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the bench results."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def context1():
    return build_context(EXPERIMENT_I_SPEC, miss_penalty=20)


@pytest.fixture(scope="session")
def context2():
    return build_context(EXPERIMENT_II_SPEC, miss_penalty=20)


@pytest.fixture(scope="session")
def suite1():
    return ExperimentSuite(EXPERIMENT_I_SPEC)


@pytest.fixture(scope="session")
def suite2():
    return ExperimentSuite(EXPERIMENT_II_SPEC)
