"""Extension bench: scalability study on generated task sets.

Sweeps the task count (the paper stops at 3) and reports, per set size,
the WCRT of the lowest-priority task under each approach plus the
simulator's measured response — the paper's comparison extended to wider
systems.  Complexity note (Section VII): the analysis cost grows with the
number of preemption pairs, i.e. quadratically in the task count.
"""

from conftest import write_artifact

from repro.analysis import ALL_APPROACHES, Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig, CacheState
from repro.experiments.reporting import Table
from repro.program import SystemLayout
from repro.sched import Simulator, TaskBinding
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt
from repro.workloads import generate_task_set

CCS = 500


def _run_size(count: int, seed: int = 13):
    system = generate_task_set(count=count, total_utilisation=0.55, seed=seed)
    config = CacheConfig.scaled_8k()
    layout = SystemLayout(stride=0x1B00)
    artifacts = {}
    for name in system.priority_order:
        placed = layout.place(system.workloads[name].program)
        artifacts[name] = analyze_task(
            placed, system.workloads[name].scenario_map(), config
        )
    crpd = CRPDAnalyzer(artifacts)
    # Real periods from measured WCETs: P_k = C_k * 1.8n keeps the base
    # utilisation near 1/1.8 = 0.55 at every task count, leaving headroom
    # for the CRPD and context-switch load.
    specs = []
    for index, name in enumerate(system.priority_order):
        wcet = artifacts[name].wcet.cycles
        period = int(wcet * 1.8 * count)
        specs.append(TaskSpec(name=name, wcet=wcet, period=period,
                              priority=index + 1))
    task_system = TaskSystem(tasks=specs)
    lowest = system.priority_order[-1]

    wcrts = {}
    for approach in ALL_APPROACHES:
        wcrts[approach] = compute_system_wcrt(
            task_system,
            cpre=lambda l, h, a=approach: crpd.cpre(l, h, a),
            context_switch=CCS,
            stop_at_deadline=False,
        ).wcrt(lowest)

    bindings = [
        TaskBinding(
            spec=task_system.task(name),
            layout=layout.layout_of(name),
            inputs=dict(system.workloads[name].scenario("gen").inputs),
        )
        for name in system.priority_order
    ]
    simulator = Simulator(bindings, cache=CacheState(config),
                          context_switch_cycles=CCS)
    horizon = min(4 * max(spec.period for spec in specs), 3_000_000)
    result = simulator.run(horizon)
    art = result.actual_response_time(lowest)
    return count, wcrts, art, task_system.utilization


def test_synthetic_scalability(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run_size(count) for count in (3, 4, 5, 6)],
        rounds=1, iterations=1,
    )
    table = Table(
        title="Extension: synthetic task-set sweep (lowest-priority WCRT)",
        headers=["tasks", "util"] + [f"App.{a.value}" for a in ALL_APPROACHES]
        + ["ART"],
    )
    for count, wcrts, art, utilisation in rows:
        table.add_row(
            count, round(utilisation, 2),
            *[wcrts[a] for a in ALL_APPROACHES], art,
        )
        # Soundness and the App4-minimal property at every size.
        assert art <= min(wcrts.values()), (count, art, wcrts)
        assert wcrts[Approach.COMBINED] == min(wcrts.values())
    write_artifact("ext_synthetic.txt", table.render())
