"""Perf bench: cold vs warm vs parallel analysis engine timings.

Times the guarded analysis pipeline three ways on the paper's two
experiments —

* **cold**: empty artifact store, every task analysed from scratch,
* **warm**: fresh in-memory state over the same on-disk store, so every
  task analysis is a disk cache hit,
* **parallel**: cold analysis fanned out over two worker processes
  (recorded for comparison, not gated: CI runners may expose one core) —

and demonstrates the branch-and-bound path engine on a synthetic task
whose 8192 feasible paths trip the default ``--max-paths`` budget (4096):
``--exact-paths`` recovers the exact Equation-4 bound from the tripped
artifacts, matching full enumeration at a fraction of the work.

Results land in ``BENCH_perf.json`` at the repo root (uploaded by the CI
perf-smoke job) and ``benchmarks/out/perf_engine.txt``.  The assertion at
the end is the CI gate: the warm run must be at least 2x faster than the
cold run on Experiment I.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
from time import perf_counter

from conftest import write_artifact

from repro.analysis import analyze_task, max_path_conflict, max_path_conflict_pruned
from repro.analysis.store import ArtifactStore
from repro.cache import CacheConfig, CIIP
from repro.experiments import EXPERIMENT_I_SPEC, EXPERIMENT_II_SPEC, build_context
from repro.guard.budget import AnalysisBudget
from repro.guard.ledger import DegradationLedger
from repro.program import ProgramBuilder, SystemLayout

REPO_ROOT = pathlib.Path(__file__).parent.parent
WARM_SPEEDUP_GATE = 2.0  # CI fails below this, Experiment I only
WARM_REPEATS = 3


def _time_build(spec, store=None, jobs=1):
    started = perf_counter()
    context = build_context(spec, miss_penalty=20, store=store, jobs=jobs)
    return perf_counter() - started, context


def _bench_experiment(spec):
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp)
        cold_seconds, cold = _time_build(spec, store=ArtifactStore(directory))
        # Warm: new store object on the same directory, so only the
        # on-disk entries survive — every analysis must be a disk hit.
        warm_seconds = None
        for _ in range(WARM_REPEATS):
            store = ArtifactStore(directory)
            seconds, warm = _time_build(spec, store=store)
            assert store.hits == len(spec.priority_order), "expected all disk hits"
            warm_seconds = seconds if warm_seconds is None else min(warm_seconds, seconds)
        parallel_seconds, parallel = _time_build(spec, jobs=2)

    for name in spec.priority_order:
        assert (
            cold.artifacts[name].wcet.cycles
            == warm.artifacts[name].wcet.cycles
            == parallel.artifacts[name].wcet.cycles
        ), f"{spec.key}/{name}: engines disagree on WCET"
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "parallel_jobs2_seconds": round(parallel_seconds, 4),
        "tasks": list(spec.priority_order),
    }


def _bench_path_bomb():
    """8192-path task: exact B&B on tripped artifacts vs full enumeration."""
    config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
    b = ProgramBuilder("bomb")
    flags = b.array("flags", words=4)
    tables = [b.array(f"t{i}", words=16) for i in range(4)]
    b.load("f", flags, index=0)
    for branch in range(13):  # 2^13 = 8192 paths > default max_paths 4096
        with b.if_else("f") as arms:
            with arms.then_case():
                with b.loop(3) as i:
                    b.load("v", tables[branch % 4], index=i)
            with arms.else_case():
                with b.loop(3) as i:
                    b.load("v", tables[(branch + 1) % 4], index=i)
    inputs = {"flags": [1, 0, 1, 0]}
    for table in tables:
        inputs[table.name] = list(range(16))

    layout = SystemLayout().place(b.build())
    ledger = DegradationLedger()
    tripped = analyze_task(
        layout, {"s": inputs}, config,
        budget=AnalysisBudget(),  # default max_paths=4096 — trips
        ledger=ledger,
    )
    assert ledger.degraded and not tripped.path_enumeration_complete
    useful = CIIP.from_addresses(config, range(0, 2048, 16))

    started = perf_counter()
    pruned = max_path_conflict_pruned(useful, tripped)
    exact_seconds = perf_counter() - started

    # Separate traced run (timings above stay tracing-free, see
    # docs/performance.md): the pruned engine must finish within its own
    # node budget on the bomb — budget_tripped=False is a regression pin.
    from repro.obs import observed

    with observed() as (_, metrics):
        max_path_conflict_pruned(useful, tripped)
    budget_tripped = metrics.to_dict()["gauges"]["pathcost.budget_tripped"]
    assert budget_tripped is False, "pruned engine tripped its node budget"

    full = analyze_task(  # raised budget: enumerate all 8192 paths
        layout, {"s": inputs}, config, budget=AnalysisBudget(max_paths=16384)
    )
    started = perf_counter()
    enumerated = max_path_conflict(useful, full).lines
    enumerate_seconds = perf_counter() - started

    assert pruned.cost == enumerated, "exact engine diverged from enumeration"
    return {
        "feasible_paths": len(full.path_profiles),
        "default_max_paths": AnalysisBudget().max_paths,
        "lines": pruned.cost,
        "explored_paths": pruned.explored_paths,
        "pruned_branches": pruned.pruned_branches,
        "exact_engine_seconds": round(exact_seconds, 4),
        "enumerate_seconds": round(enumerate_seconds, 4),
        "budget_tripped": budget_tripped,
    }


def test_perf_engine():
    results = {
        "bench": "perf_engine",
        "gate": {"exp1_warm_speedup_min": WARM_SPEEDUP_GATE},
        "exp1": _bench_experiment(EXPERIMENT_I_SPEC),
        "exp2": _bench_experiment(EXPERIMENT_II_SPEC),
        "path_bomb": _bench_path_bomb(),
    }
    (REPO_ROOT / "BENCH_perf.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    lines = ["perf engine bench", ""]
    for key in ("exp1", "exp2"):
        r = results[key]
        lines.append(
            f"{key}: cold {r['cold_seconds'] * 1000:.0f} ms, "
            f"warm {r['warm_seconds'] * 1000:.0f} ms "
            f"({r['warm_speedup']}x), "
            f"jobs=2 {r['parallel_jobs2_seconds'] * 1000:.0f} ms"
        )
    bomb = results["path_bomb"]
    lines.append(
        f"path bomb: {bomb['feasible_paths']} paths "
        f"(budget {bomb['default_max_paths']}), exact engine "
        f"{bomb['exact_engine_seconds'] * 1000:.1f} ms over "
        f"{bomb['explored_paths']} explored / {bomb['pruned_branches']} pruned, "
        f"enumeration {bomb['enumerate_seconds'] * 1000:.1f} ms, "
        f"both -> {bomb['lines']} lines"
    )
    write_artifact("perf_engine.txt", "\n".join(lines))

    # The CI gate: warm analysis must be at least 2x faster on Exp I.
    assert results["exp1"]["warm_speedup"] >= WARM_SPEEDUP_GATE, (
        f"warm speedup {results['exp1']['warm_speedup']}x below the "
        f"{WARM_SPEEDUP_GATE}x gate (see BENCH_perf.json)"
    )
