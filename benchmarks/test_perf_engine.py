"""Perf bench: cold vs warm vs parallel analysis engine timings.

Times the guarded analysis pipeline on the paper's two experiments —

* **cold**: empty artifact store, every task analysed from scratch,
* **warm**: fresh in-memory state over the same on-disk store, so every
  task analysis is answered by disk sub-artifact hits,
* **parallel sweep**: a 4-penalty sweep at ``--jobs 2`` through the warm
  :class:`~repro.batch.pool.WarmPool` batch engine, against the old
  per-call-pool loop that forked fresh workers for every point (the
  regression this engine exists to fix: per-call pools made ``--jobs 2``
  *slower* than serial),
* **geometry sweep**: a penalty × geometry grid re-run against a
  populated store, against full per-point recompute — the sub-artifact
  decomposition gate —

and demonstrates the branch-and-bound path engine on a synthetic task
whose 8192 feasible paths trip the default ``--max-paths`` budget (4096):
``--exact-paths`` recovers the exact Equation-4 bound from the tripped
artifacts, matching full enumeration at a fraction of the work.

Results land in ``BENCH_perf.json`` at the repo root (uploaded by the CI
perf-smoke job, diffed against the committed baseline by
``scripts/bench_gate_diff.py``) and ``benchmarks/out/perf_engine.txt``.
The assertions at the end are the CI gates: warm >= 2x on Experiment I,
``parallel_speedup >= 1.3`` on the exp1 jobs=2 sweep, and >= 3x
warm-sweep speedup on the geometry grid.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
from time import perf_counter

from conftest import write_artifact

from repro.analysis import analyze_task, max_path_conflict, max_path_conflict_pruned
from repro.analysis.store import ArtifactStore
from repro.cache import CacheConfig, CIIP
from repro.experiments import EXPERIMENT_I_SPEC, EXPERIMENT_II_SPEC, build_context
from repro.guard.budget import AnalysisBudget
from repro.guard.ledger import DegradationLedger
from repro.program import ProgramBuilder, SystemLayout

REPO_ROOT = pathlib.Path(__file__).parent.parent
WARM_SPEEDUP_GATE = 2.0  # CI fails below this, Experiment I only
PARALLEL_SPEEDUP_GATE = 1.3  # warm-pool jobs=2 sweep vs per-call pools
SWEEP_WARM_SPEEDUP_GATE = 3.0  # geometry grid: warm store vs recompute
WHATIF_P50_GATE_SECONDS = 0.050  # single-edit re-analysis, warm, ROADMAP 2
SERVE_P99_GATE_MS = 500.0  # submit-to-result, 16 clients on a warm grid
OPTIMIZE_EVALS_PER_SEC_GATE = 0.5  # layout-search evaluation throughput
SERVE_CLIENTS = 16
SERVE_REQUESTS_PER_CLIENT = 4
WARM_REPEATS = 3
SWEEP_PENALTIES = (10, 20, 30, 40)
SWEEP_GEOMETRIES = ((64, 4, 32), (128, 2, 32), (32, 4, 16))


def _time_build(spec, store=None, jobs=1):
    started = perf_counter()
    context = build_context(spec, miss_penalty=20, store=store, jobs=jobs)
    return perf_counter() - started, context


def _bench_experiment(spec):
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp)
        cold_seconds, cold = _time_build(spec, store=ArtifactStore(directory))
        # Warm: new store object on the same directory, so only the
        # on-disk entries survive — every analysis must be a disk hit.
        warm_seconds = None
        for _ in range(WARM_REPEATS):
            store = ArtifactStore(directory)
            seconds, warm = _time_build(spec, store=store)
            # Every persisted sub-artifact (trace/sim/flow/paths) of every
            # task must come back from disk.
            assert store.hits == 4 * len(spec.priority_order), (
                "expected all disk hits"
            )
            warm_seconds = seconds if warm_seconds is None else min(warm_seconds, seconds)
        parallel_seconds, parallel = _time_build(spec, jobs=2)

    for name in spec.priority_order:
        assert (
            cold.artifacts[name].wcet.cycles
            == warm.artifacts[name].wcet.cycles
            == parallel.artifacts[name].wcet.cycles
        ), f"{spec.key}/{name}: engines disagree on WCET"
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "parallel_jobs2_seconds": round(parallel_seconds, 4),
        "tasks": list(spec.priority_order),
    }


def _old_style_point(spec, penalty):
    """One sweep point the pre-batch way: fresh per-call pools for the
    task fan-out and the pair fan-out, full CRPD + WCRT downstream."""
    from repro.analysis.crpd import ALL_APPROACHES
    from repro.wcrt.response_time import compute_system_wcrt

    context = build_context(spec, miss_penalty=penalty, jobs=2)
    context.crpd.estimate_all_pairs(list(context.priority_order), jobs=2)
    for approach in ALL_APPROACHES:
        compute_system_wcrt(
            context.system,
            cpre=lambda low, high, _a=approach: context.crpd.cpre(
                low, high, _a
            ),
            context_switch=spec.context_switch_cycles,
            stop_at_deadline=False,
        )
    return context


def _bench_parallel_sweep(spec):
    """Warm-pool jobs=2 sweep vs the per-call-pool jobs=2 loop.

    Both sides run the identical four-penalty workload (task analyses,
    all preemption pairs, all four WCRT fixpoints) with no store, so the
    measured gap is purely pool lifecycle: worker start-up and context
    shipping once per batch instead of twice per point.
    """
    from repro.batch import analyze_batch, sweep_grid

    points = sweep_grid((spec.key,), SWEEP_PENALTIES)

    started = perf_counter()
    contexts = [
        _old_style_point(spec, penalty) for penalty in SWEEP_PENALTIES
    ]
    per_call_seconds = perf_counter() - started

    started = perf_counter()
    batch = analyze_batch(points, jobs=2)
    warm_pool_seconds = perf_counter() - started

    for context, result in zip(contexts, batch):
        for name in spec.priority_order:
            assert (
                result.wcet[name] == context.artifacts[name].wcet.cycles
            ), f"{spec.key}: sweep WCET diverged from per-point loop"
    return {
        "points": len(points),
        "per_call_pool_jobs2_seconds": round(per_call_seconds, 4),
        "warm_pool_jobs2_seconds": round(warm_pool_seconds, 4),
        "parallel_speedup": round(per_call_seconds / warm_pool_seconds, 2),
        "pool_reuse": batch.pool_reuse,
        "pool_ship_bytes": batch.pool_ship_bytes,
    }


def _bench_geometry_sweep():
    """Penalty x geometry grid: warm sub-artifact reuse vs recompute."""
    from repro.batch import analyze_batch, sweep_grid

    points = sweep_grid(("exp1",), SWEEP_PENALTIES, SWEEP_GEOMETRIES)

    started = perf_counter()
    recompute = analyze_batch(points, jobs=1)
    recompute_seconds = perf_counter() - started

    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp)
        analyze_batch(points, jobs=1, store=ArtifactStore(directory))
        warm_seconds = None
        warm = None
        for _ in range(WARM_REPEATS):
            store = ArtifactStore(directory)  # disk entries only
            started = perf_counter()
            warm = analyze_batch(points, jobs=1, store=store)
            seconds = perf_counter() - started
            warm_seconds = (
                seconds if warm_seconds is None else min(warm_seconds, seconds)
            )
        assert warm.store_hits > 0, "geometry sweep never touched the store"

    for cold_result, warm_result in zip(recompute, warm):
        assert cold_result.wcrt == warm_result.wcrt, (
            f"{cold_result.point.label()}: warm sweep diverged from recompute"
        )
        assert cold_result.events == warm_result.events
    return {
        "points": len(points),
        "recompute_seconds": round(recompute_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_sweep_speedup": round(recompute_seconds / warm_seconds, 2),
        "store_hits": warm.store_hits,
        "store_misses": warm.store_misses,
    }


def _bench_path_bomb():
    """8192-path task: exact B&B on tripped artifacts vs full enumeration."""
    config = CacheConfig(num_sets=32, ways=2, line_size=16, miss_penalty=20)
    b = ProgramBuilder("bomb")
    flags = b.array("flags", words=4)
    tables = [b.array(f"t{i}", words=16) for i in range(4)]
    b.load("f", flags, index=0)
    for branch in range(13):  # 2^13 = 8192 paths > default max_paths 4096
        with b.if_else("f") as arms:
            with arms.then_case():
                with b.loop(3) as i:
                    b.load("v", tables[branch % 4], index=i)
            with arms.else_case():
                with b.loop(3) as i:
                    b.load("v", tables[(branch + 1) % 4], index=i)
    inputs = {"flags": [1, 0, 1, 0]}
    for table in tables:
        inputs[table.name] = list(range(16))

    layout = SystemLayout().place(b.build())
    ledger = DegradationLedger()
    tripped = analyze_task(
        layout, {"s": inputs}, config,
        budget=AnalysisBudget(),  # default max_paths=4096 — trips
        ledger=ledger,
    )
    assert ledger.degraded and not tripped.path_enumeration_complete
    useful = CIIP.from_addresses(config, range(0, 2048, 16))

    started = perf_counter()
    pruned = max_path_conflict_pruned(useful, tripped)
    exact_seconds = perf_counter() - started

    # Separate traced run (timings above stay tracing-free, see
    # docs/performance.md): the pruned engine must finish within its own
    # node budget on the bomb — budget_tripped=False is a regression pin.
    from repro.obs import observed

    with observed() as (_, metrics):
        max_path_conflict_pruned(useful, tripped)
    budget_tripped = metrics.to_dict()["gauges"]["pathcost.budget_tripped"]
    assert budget_tripped is False, "pruned engine tripped its node budget"

    full = analyze_task(  # raised budget: enumerate all 8192 paths
        layout, {"s": inputs}, config, budget=AnalysisBudget(max_paths=16384)
    )
    started = perf_counter()
    enumerated = max_path_conflict(useful, full).lines
    enumerate_seconds = perf_counter() - started

    assert pruned.cost == enumerated, "exact engine diverged from enumeration"
    return {
        "feasible_paths": len(full.path_profiles),
        "default_max_paths": AnalysisBudget().max_paths,
        "lines": pruned.cost,
        "explored_paths": pruned.explored_paths,
        "pruned_branches": pruned.pruned_branches,
        "exact_engine_seconds": round(exact_seconds, 4),
        "enumerate_seconds": round(enumerate_seconds, 4),
        "budget_tripped": budget_tripped,
    }


def _bench_whatif(experiment):
    """Warm single-edit latency of the incremental what-if engine.

    One session per experiment: analyse the base cold, run an edit grid
    once to populate the session store and the WCRT memo (the geometry
    states' sub-artifacts land in the store on this pass), then measure
    a second pass over the same grid — every edit is now answered by
    sub-artifact reuse plus warm-started fixpoints.  The p50 of that
    warm pass is the interactive-latency gate (< 50 ms, ROADMAP item 2).
    """
    from statistics import median

    from repro.analysis.whatif import WhatIfSession

    with WhatIfSession(experiment) as session:
        base = session.result()
        task = next(iter(base.periods))
        period = base.periods[task]
        edits = [
            "penalty=10",
            "penalty=40",
            f"period:{task}={period * 2}",
            f"period:{task}={period}",
            "geometry=64x2x32",
            "geometry=128x4x32",
            "penalty=20",
        ]
        for edit in edits:  # population pass: cold geometry states
            session.apply(edit)
        warm_seconds = [session.apply(edit).elapsed_seconds for edit in edits]
    p50 = median(warm_seconds)
    return {
        "base_cold_seconds": round(base.elapsed_seconds, 4),
        "edits": len(edits),
        "warm_p50_ms": round(p50 * 1e3, 3),
        "warm_max_ms": round(max(warm_seconds) * 1e3, 3),
        "edits_per_sec": round(1.0 / p50, 1),
    }


def _bench_optimize():
    """Evaluation throughput of the layout/coloring search (ROADMAP 3).

    A seeded ``optimize`` run on Experiment I at its own geometry: a
    generation batch plus greedy/annealing restarts, every candidate
    scored through a warm :class:`WhatIfSession` jump.  Each evaluation
    is a *new* layout (the moved tasks' trace chains recompute), so the
    throughput sits between the cold-build and single-edit extremes the
    other sections measure; the gate is a conservative floor.
    """
    from repro.analysis.store import ArtifactStore
    from repro.analysis.whatif import WhatIfSession
    from repro.optimize import optimize

    store = ArtifactStore(directory=None, memory_slots=8192)
    with WhatIfSession("exp1", store=store) as probe:
        config = probe._config
    started = perf_counter()
    outcome = optimize(
        "exp1",
        seed=1,
        budget_evals=16,
        generation=4,
        patience=8,
        restarts=2,
        cache_budgets=[config],
        store=store,
    )
    elapsed = perf_counter() - started
    budget = outcome.default_budget
    return {
        "evals": outcome.evals_used,
        "wall_seconds": round(elapsed, 4),
        "evals_per_sec": round(outcome.evals_used / elapsed, 2),
        "moves_logged": len(outcome.move_log),
        "baseline_score": budget.baseline_score,
        "best_score": budget.best_score,
        "improvement_pct": budget.improvement_pct(),
    }


def _bench_serve():
    """Load-test the multi-tenant serve layer on a warm point grid.

    16 concurrent clients × 4 requests against an
    :class:`~repro.serve.service.AnalysisService` (workers=4) sharing one
    pre-warmed store: p50/p99 submit-to-result latency, throughput, and
    two correctness counters the gates watch — non-byte-identical
    responses (must be 0, vs directly computed references) and sheds
    (must be 0 while the queue has capacity for the whole burst; a
    second pass with a capacity-2 queue and a wedged worker demonstrates
    shedding *does* engage once capacity is exceeded).
    """
    import random
    import threading
    from statistics import median

    from repro.batch.engine import SweepPoint, analyze_batch
    from repro.experiments.setup import ALL_SPECS
    from repro.serve.protocol import canonical_json, point_payload
    from repro.serve.service import AnalysisService

    bodies = [
        {"kind": "point", "experiment": "exp1", "miss_penalty": p}
        for p in (10, 20, 40)
    ] + [{"kind": "point", "experiment": "exp2", "miss_penalty": 20}]
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp)
        expected = {}
        specs = {s.key: s for s in ALL_SPECS}
        for body in bodies:  # warm the store + compute references
            point = SweepPoint(
                experiment=body["experiment"],
                miss_penalty=body["miss_penalty"],
            )
            batch = analyze_batch([point], store=ArtifactStore(directory))
            expected[canonical_json(body)] = canonical_json(
                point_payload(
                    batch.results[0],
                    periods=specs[body["experiment"]].periods,
                )
            )

        total = SERVE_CLIENTS * SERVE_REQUESTS_PER_CLIENT
        service = AnalysisService(
            workers=4,
            queue_capacity=total,
            store=ArtifactStore(directory),
        )
        latencies: list = []
        mismatches = [0]
        lock = threading.Lock()

        def client(index):
            rng = random.Random(1000 + index)
            for _ in range(SERVE_REQUESTS_PER_CLIENT):
                body = rng.choice(bodies)
                started = perf_counter()
                job = service.submit(body, client=f"bench-{index}")
                service.wait(job.id, timeout=300)
                elapsed = perf_counter() - started
                env = service.job_envelope(job)
                with lock:
                    latencies.append(elapsed)
                    if (
                        env["state"] != "done"
                        or canonical_json(env["result"])
                        != expected[canonical_json(body)]
                    ):
                        mismatches[0] += 1

        with service:
            started = perf_counter()
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(SERVE_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall_seconds = perf_counter() - started
            shed_under_capacity = service.stats()["shed"]

        # Shedding engages exactly when capacity is exceeded: one wedged
        # worker, a 2-slot queue, 4 concurrent submits -> 1 shed.
        started_event = threading.Event()
        gate = threading.Event()

        def wedge(job):
            started_event.set()
            gate.wait(timeout=60)

        overload = AnalysisService(
            workers=1,
            queue_capacity=2,
            store=ArtifactStore(directory),
            job_hook=wedge,
        )
        with overload:
            statuses = [overload.submit_envelope(bodies[0])[0]]
            started_event.wait(timeout=60)
            for _ in range(3):
                statuses.append(overload.submit_envelope(bodies[0])[0])
            gate.set()
            shed_over_capacity = overload.stats()["shed"]

    latencies.sort()
    p50_ms = median(latencies) * 1e3
    p99_ms = latencies[int(0.99 * (len(latencies) - 1))] * 1e3
    return {
        "clients": SERVE_CLIENTS,
        "requests": total,
        "workers": 4,
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "wall_seconds": round(wall_seconds, 4),
        "requests_per_sec": round(total / wall_seconds, 1),
        "mismatches": mismatches[0],
        "shed_under_capacity": shed_under_capacity,
        "overload_statuses": statuses,
        "shed_over_capacity": shed_over_capacity,
    }


def test_perf_engine():
    results = {
        "bench": "perf_engine",
        "gate": {
            "exp1_warm_speedup_min": WARM_SPEEDUP_GATE,
            "exp1_parallel_speedup_min": PARALLEL_SPEEDUP_GATE,
            "sweep_warm_speedup_min": SWEEP_WARM_SPEEDUP_GATE,
            "whatif_warm_p50_max_ms": WHATIF_P50_GATE_SECONDS * 1e3,
            "serve_p99_max_ms": SERVE_P99_GATE_MS,
            "optimize_evals_per_sec_min": OPTIMIZE_EVALS_PER_SEC_GATE,
        },
        "exp1": _bench_experiment(EXPERIMENT_I_SPEC),
        "exp2": _bench_experiment(EXPERIMENT_II_SPEC),
        "parallel_sweep": {
            "exp1": _bench_parallel_sweep(EXPERIMENT_I_SPEC),
            "exp2": _bench_parallel_sweep(EXPERIMENT_II_SPEC),
        },
        "geometry_sweep": _bench_geometry_sweep(),
        "path_bomb": _bench_path_bomb(),
        "whatif": {
            "exp1": _bench_whatif("exp1"),
            "exp2": _bench_whatif("exp2"),
        },
        "optimize": _bench_optimize(),
        "serve": _bench_serve(),
    }
    # The metrics the gates (and scripts/bench_gate_diff.py) watch.
    # ``whatif_edits_per_sec`` is the p50 edit latency inverted so the
    # diff script's higher-is-better convention applies; the slower
    # experiment is the one gated.
    results["gated"] = {
        "exp1_warm_speedup": results["exp1"]["warm_speedup"],
        "exp1_parallel_speedup": results["parallel_sweep"]["exp1"][
            "parallel_speedup"
        ],
        "sweep_warm_speedup": results["geometry_sweep"]["warm_sweep_speedup"],
        "whatif_edits_per_sec": min(
            results["whatif"][key]["edits_per_sec"] for key in ("exp1", "exp2")
        ),
        "serve_requests_per_sec": results["serve"]["requests_per_sec"],
        "optimize_evals_per_sec": results["optimize"]["evals_per_sec"],
    }
    (REPO_ROOT / "BENCH_perf.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    lines = ["perf engine bench", ""]
    for key in ("exp1", "exp2"):
        r = results[key]
        lines.append(
            f"{key}: cold {r['cold_seconds'] * 1000:.0f} ms, "
            f"warm {r['warm_seconds'] * 1000:.0f} ms "
            f"({r['warm_speedup']}x), "
            f"jobs=2 {r['parallel_jobs2_seconds'] * 1000:.0f} ms"
        )
    for key in ("exp1", "exp2"):
        r = results["parallel_sweep"][key]
        lines.append(
            f"{key} jobs=2 sweep ({r['points']} pts): per-call pools "
            f"{r['per_call_pool_jobs2_seconds'] * 1000:.0f} ms, warm pool "
            f"{r['warm_pool_jobs2_seconds'] * 1000:.0f} ms "
            f"({r['parallel_speedup']}x)"
        )
    sweep = results["geometry_sweep"]
    lines.append(
        f"geometry sweep ({sweep['points']} pts): recompute "
        f"{sweep['recompute_seconds'] * 1000:.0f} ms, warm store "
        f"{sweep['warm_seconds'] * 1000:.0f} ms "
        f"({sweep['warm_sweep_speedup']}x)"
    )
    for key in ("exp1", "exp2"):
        r = results["whatif"][key]
        lines.append(
            f"{key} what-if: base {r['base_cold_seconds'] * 1000:.0f} ms cold, "
            f"{r['edits']} warm edits p50 {r['warm_p50_ms']:.2f} ms / "
            f"max {r['warm_max_ms']:.2f} ms ({r['edits_per_sec']} edits/s)"
        )
    serve = results["serve"]
    lines.append(
        f"serve: {serve['clients']} clients x "
        f"{serve['requests'] // serve['clients']} warm requests, "
        f"p50 {serve['p50_ms']:.1f} ms / p99 {serve['p99_ms']:.1f} ms, "
        f"{serve['requests_per_sec']} req/s, "
        f"{serve['mismatches']} mismatches, "
        f"{serve['shed_under_capacity']} shed (overload pass: "
        f"{serve['shed_over_capacity']} shed)"
    )
    opt = results["optimize"]
    lines.append(
        f"optimize: {opt['evals']} layout evals in "
        f"{opt['wall_seconds'] * 1000:.0f} ms ({opt['evals_per_sec']} "
        f"evals/s), score {opt['baseline_score']} -> {opt['best_score']} "
        f"({opt['improvement_pct']:+.2f}%)"
    )
    bomb = results["path_bomb"]
    lines.append(
        f"path bomb: {bomb['feasible_paths']} paths "
        f"(budget {bomb['default_max_paths']}), exact engine "
        f"{bomb['exact_engine_seconds'] * 1000:.1f} ms over "
        f"{bomb['explored_paths']} explored / {bomb['pruned_branches']} pruned, "
        f"enumeration {bomb['enumerate_seconds'] * 1000:.1f} ms, "
        f"both -> {bomb['lines']} lines"
    )
    write_artifact("perf_engine.txt", "\n".join(lines))

    # The CI gates: warm analysis >= 2x on Exp I, the warm-pool jobs=2
    # sweep >= 1.3x over per-call pools, and the geometry sweep >= 3x
    # warm over recompute.
    assert results["exp1"]["warm_speedup"] >= WARM_SPEEDUP_GATE, (
        f"warm speedup {results['exp1']['warm_speedup']}x below the "
        f"{WARM_SPEEDUP_GATE}x gate (see BENCH_perf.json)"
    )
    exp1_parallel = results["parallel_sweep"]["exp1"]["parallel_speedup"]
    assert exp1_parallel >= PARALLEL_SPEEDUP_GATE, (
        f"jobs=2 sweep speedup {exp1_parallel}x below the "
        f"{PARALLEL_SPEEDUP_GATE}x gate (see BENCH_perf.json)"
    )
    assert sweep["warm_sweep_speedup"] >= SWEEP_WARM_SPEEDUP_GATE, (
        f"geometry-sweep warm speedup {sweep['warm_sweep_speedup']}x below "
        f"the {SWEEP_WARM_SPEEDUP_GATE}x gate (see BENCH_perf.json)"
    )
    for key in ("exp1", "exp2"):
        p50_ms = results["whatif"][key]["warm_p50_ms"]
        assert p50_ms < WHATIF_P50_GATE_SECONDS * 1e3, (
            f"{key} what-if warm p50 {p50_ms} ms breaches the "
            f"{WHATIF_P50_GATE_SECONDS * 1e3:.0f} ms interactive gate "
            f"(see BENCH_perf.json)"
        )
    assert opt["evals_per_sec"] >= OPTIMIZE_EVALS_PER_SEC_GATE, (
        f"optimize throughput {opt['evals_per_sec']} evals/s below the "
        f"{OPTIMIZE_EVALS_PER_SEC_GATE} evals/s gate (see BENCH_perf.json)"
    )
    assert opt["best_score"] <= opt["baseline_score"], (
        "optimizer returned a best layout worse than the baseline"
    )
    # Serve gates: p99 under the latency ceiling, every response
    # byte-identical, shedding only once queue capacity is exceeded.
    assert serve["p99_ms"] < SERVE_P99_GATE_MS, (
        f"serve p99 {serve['p99_ms']} ms breaches the "
        f"{SERVE_P99_GATE_MS:.0f} ms gate (see BENCH_perf.json)"
    )
    assert serve["mismatches"] == 0, (
        f"{serve['mismatches']} served responses diverged from the "
        "direct analyze_batch references"
    )
    assert serve["shed_under_capacity"] == 0, (
        "service shed requests while the queue had capacity"
    )
    assert serve["overload_statuses"] == [202, 202, 202, 429], (
        f"overload pass admitted/shed wrongly: {serve['overload_statuses']}"
    )
    assert serve["shed_over_capacity"] == 1
