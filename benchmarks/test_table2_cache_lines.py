"""Bench: regenerate Table II (cache lines to reload per preemption pair).

Times the full four-approach CRPD estimation (RMB/LMB results are cached
in the artifacts; what is measured is the CIIP intersections and the
Section VI path maximisation) and checks the paper's orderings.
"""

from conftest import write_artifact

from repro.analysis import Approach, CRPDAnalyzer
from repro.experiments import table2_cache_lines


def _fresh_estimates(context):
    # A fresh analyzer so the benchmark times real work, not a dict lookup.
    crpd = CRPDAnalyzer(context.artifacts, mumbs_mode="paper")
    return crpd.estimate_all_pairs(list(context.priority_order))


def _check_orderings(estimates):
    for estimate in estimates:
        lines = estimate.lines
        assert lines[Approach.COMBINED] <= lines[Approach.INTERTASK]
        assert lines[Approach.COMBINED] <= lines[Approach.LEE]
        assert lines[Approach.INTERTASK] <= lines[Approach.BUSQUETS]


def test_table2_experiment1(benchmark, context1):
    estimates = benchmark(_fresh_estimates, context1)
    assert len(estimates) == 3
    _check_orderings(estimates)
    write_artifact("table2_exp1.txt", table2_cache_lines(context1).render())


def test_table2_experiment2(benchmark, context2):
    estimates = benchmark(_fresh_estimates, context2)
    assert len(estimates) == 3
    _check_orderings(estimates)
    # The paper's crossover cell: Lee (App.3) beats inter-task (App.2)
    # for ADPCMC preempted by ADPCMD.
    crossover = [
        e
        for e in estimates
        if e.lines[Approach.LEE] < e.lines[Approach.INTERTASK]
    ]
    assert crossover
    write_artifact("table2_exp2.txt", table2_cache_lines(context2).render())
