"""Bench: regenerate Table I (task WCET / period / priority)."""

from conftest import write_artifact

from repro.experiments import table1_tasks


def test_table1(benchmark, context1, context2):
    contexts = {"exp1": context1, "exp2": context2}
    table = benchmark(table1_tasks, contexts)
    assert len(table.rows) == 6
    # Paper Table I structure: per experiment, WCET < period, RMA priorities.
    for wcet, period in zip(
        table.column("WCET (cycles)"), table.column("Period (cycles)")
    ):
        assert 0 < wcet < period
    write_artifact("table1.txt", table.render())
