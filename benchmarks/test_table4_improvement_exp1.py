"""Bench: regenerate Table IV (Experiment I improvement percentages)."""

from conftest import write_artifact

from repro.experiments import MISS_PENALTIES, table_improvement


def test_table4(benchmark, suite1):
    for penalty in MISS_PENALTIES:
        suite1.context(penalty)
    table = benchmark(table_improvement, suite1)
    assert len(table.rows) == 6  # 3 baselines x 2 preempted tasks
    for row in table.rows:
        cells = row[2:]
        assert all(c >= 0.0 for c in cells), row
    # Improvement vs Approach 1 grows with the miss penalty for OFDM.
    ofdm_vs_app1 = next(
        row for row in table.rows if row[0] == "App.4 vs App.1" and row[1] == "OFDM"
    )
    assert ofdm_vs_app1[-1] > ofdm_vs_app1[2]
    write_artifact("table4.txt", table.render())
