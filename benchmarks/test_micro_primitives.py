"""Micro-benchmarks of the substrate primitives.

Not a paper table — these track the cost of the building blocks every
experiment leans on: LRU cache access, VM instruction dispatch, RMB/LMB
fixpoint solving, CIIP intersection and the WCRT iteration.
"""

from repro.analysis import analyze_task, solve_rmb_lmb
from repro.analysis.rmb_lmb import solve_rmb_lmb as _solve
from repro.cache import CIIP, CacheConfig, CacheState, conflict_bound
from repro.program import ProgramBuilder, SystemLayout
from repro.vm import Machine, NodeTraceAggregate, TraceRecorder
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt


def test_cache_access_throughput(benchmark):
    config = CacheConfig.scaled_16k()
    cache = CacheState(config)
    addresses = [(i * 52) % 0x8000 for i in range(4096)]

    def run():
        return cache.touch_all(addresses)

    benchmark(run)
    assert cache.stats.accesses > 0


def test_vm_instruction_throughput(benchmark):
    b = ProgramBuilder("bench")
    data = b.array("data", words=64)
    out = b.array("out", words=64)
    with b.loop(32):
        with b.loop(64) as i:
            b.load("v", data, index=i)
            b.binop("v", "mul", "v", 3)
            b.binop("v", "add", "v", 1)
            b.store("v", out, index=i)
    program = b.build()
    layout = SystemLayout().place(program)
    config = CacheConfig.scaled_16k()

    def run():
        machine = Machine(layout=layout, cache=CacheState(config))
        machine.write_array("data", list(range(64)))
        machine.run()
        return machine.steps

    steps = benchmark(run)
    assert steps > 10_000


def test_rmb_lmb_fixpoint(benchmark):
    from repro.workloads import build_ofdm

    config = CacheConfig.scaled_16k()
    workload = build_ofdm()
    layout = SystemLayout().place(workload.program)
    trace = TraceRecorder()
    machine = Machine(layout=layout, cache=CacheState(config), trace=trace)
    for name, values in workload.scenarios[0].inputs.items():
        machine.write_array(name, values)
    machine.run()
    aggregate = NodeTraceAggregate.from_recorders(config, [trace])

    result = benchmark(_solve, workload.program.cfg, aggregate, config)
    assert result.entry_rmb


def test_ciip_conflict_bound(benchmark):
    config = CacheConfig.scaled_16k()
    a = CIIP.from_addresses(config, [i * 48 for i in range(600)])
    b = CIIP.from_addresses(config, [4096 + i * 80 for i in range(400)])

    bound = benchmark(conflict_bound, a, b)
    assert bound > 0


def test_full_task_analysis(benchmark):
    """End-to-end analyze_task on the ED workload (the per-task pipeline)."""
    from repro.workloads import build_edge_detection

    config = CacheConfig.scaled_16k()
    workload = build_edge_detection()
    layout = SystemLayout().place(workload.program)

    art = benchmark.pedantic(
        analyze_task, args=(layout, workload.scenario_map(), config),
        rounds=2, iterations=1,
    )
    assert art.wcet.cycles > 0


def test_wcrt_iteration(benchmark):
    system = TaskSystem(
        tasks=[
            TaskSpec(name=f"t{i}", wcet=100 + 37 * i, period=1000 * (i + 1), priority=i)
            for i in range(8)
        ]
    )

    result = benchmark(
        compute_system_wcrt, system, cpre=lambda l, h: 40, context_switch=20
    )
    assert len(result.results) == 8
