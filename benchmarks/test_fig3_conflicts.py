"""Bench: regenerate Figure 3 (cache-line conflict upper bound, Example 4)."""

from conftest import write_artifact

from repro.cache import CIIP, CacheConfig, CacheState, conflict_bound
from repro.experiments import figure3_conflicts


def _bound_and_realised():
    """Equation 2's bound plus a realised LRU mapping for Example 4."""
    config = CacheConfig.example2_1k()
    m1 = [0x000, 0x100, 0x010, 0x110, 0x210]
    m2 = [0x200, 0x310, 0x410, 0x510]
    bound = conflict_bound(
        CIIP.from_addresses(config, m1), CIIP.from_addresses(config, m2)
    )
    cache = CacheState(config)
    for address in m1:
        cache.access(address)
    resident = cache.resident_blocks()
    for address in m2:
        cache.access(address)
    realised = len(resident - cache.resident_blocks())
    return bound, realised


def test_figure3(benchmark):
    bound, realised = benchmark(_bound_and_realised)
    assert bound == 4  # the paper's Figure 3(a) value
    assert realised <= bound  # Figure 3(b): the realised overlap may be less
    figure = figure3_conflicts()
    write_artifact(
        "figure3.txt",
        figure.render() + f"\n  realised LRU overlap in this order: {realised}",
    )
