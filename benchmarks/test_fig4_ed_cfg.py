"""Bench: regenerate Figure 4 (the ED control-flow graph / SFP-PrS view)."""

from conftest import write_artifact

from repro.experiments import figure4_ed_cfg
from repro.program import enumerate_path_profiles, sfp_prs_segments
from repro.workloads import build_edge_detection


def _segment_and_paths():
    workload = build_edge_detection()
    segments = sfp_prs_segments(workload.program)
    paths = enumerate_path_profiles(workload.program)
    return segments, paths


def test_figure4(benchmark):
    segments, paths = benchmark(_segment_and_paths)
    assert len(paths) == 2  # Sobel vs Cauchy (Example 5)
    assert any(s.kind == "decision" for s in segments)
    assert any(s.kind == "loop" and s.single_feasible_path for s in segments)
    write_artifact("figure4.txt", figure4_ed_cfg())
