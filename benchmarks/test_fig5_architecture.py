"""Bench: regenerate Figure 5 (simulation architecture) and exercise it.

The figure itself is static; the bench validates the stack it depicts by
running a short three-task simulation through every layer (workloads ->
scheduler -> VM -> cache).
"""

from conftest import write_artifact

from repro.cache import CacheState
from repro.experiments import figure5_architecture
from repro.sched import Simulator


def _exercise_stack(context):
    simulator = Simulator(
        context.bindings(),
        cache=CacheState(context.config),
        context_switch_cycles=context.spec.context_switch_cycles,
    )
    result = simulator.run(min(200_000, context.system.hyperperiod))
    return result


def test_figure5(benchmark, context2):
    result = benchmark(_exercise_stack, context2)
    assert result.jobs
    text = figure5_architecture()
    assert "repro.sched" in text
    write_artifact("figure5.txt", text)
