"""Extension bench: schedulability headroom per CRPD approach.

Quantifies the paper's motivation ("pessimistic estimates of execution
times may lower the utilization of resources", Section I): for each
approach, the critical WCET scaling factor and the breakdown cache-miss
penalty of Experiment I.  Tighter CRPD analysis -> more admitted load.
"""

from conftest import write_artifact

from repro.analysis import (
    ALL_APPROACHES,
    PenaltyModel,
    breakdown_miss_penalty,
    critical_scaling_factor,
)
from repro.experiments import EXPERIMENT_I_SPEC, build_context
from repro.experiments.reporting import Table


def _sweep():
    context = build_context(EXPERIMENT_I_SPEC, miss_penalty=20)
    context40 = build_context(EXPERIMENT_I_SPEC, miss_penalty=40)
    model = PenaltyModel.calibrate(
        {n: a.wcet.cycles for n, a in context.artifacts.items()},
        {n: a.wcet.cycles for n, a in context40.artifacts.items()},
        20,
        40,
    )
    rows = []
    ccs = context.spec.context_switch_cycles
    for approach in ALL_APPROACHES:
        factor = critical_scaling_factor(
            context.system,
            cpre=lambda l, h, a=approach: context.crpd.cpre(l, h, a),
            context_switch=ccs,
        )
        breakdown = breakdown_miss_penalty(
            context.system, context.crpd, model, approach, context_switch=ccs
        )
        rows.append((approach, factor, breakdown))
    return rows


def test_sensitivity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        title="Extension: schedulability headroom per approach (Experiment I)",
        headers=["Approach", "critical WCET scaling", "breakdown Cmiss"],
        notes=[
            "critical scaling: max factor on every WCET that stays schedulable",
            "breakdown Cmiss: largest miss penalty that stays schedulable",
        ],
    )
    by_approach = {}
    for approach, factor, breakdown in rows:
        table.add_row(f"App.{approach.value}", round(factor, 3), breakdown)
        by_approach[approach] = (factor, breakdown)
    from repro.analysis import Approach

    # The combined approach never has less headroom than the others.
    combined = by_approach[Approach.COMBINED]
    for approach, values in by_approach.items():
        assert combined[0] >= values[0] - 1e-6, approach
        assert combined[1] >= values[1], approach
    # And it has strictly more breakdown-penalty headroom than Approach 1.
    assert combined[1] > by_approach[Approach.BUSQUETS][1]
    write_artifact("ext_sensitivity.txt", table.render())
