"""Extension bench: replacement-policy sensitivity.

The paper assumes LRU but claims the approach transfers to other
replacement algorithms.  This bench measures, for each policy, the ED
task's isolated runtime (same program, same inputs) and the measured
reload count after a worst-case (full-flush) preemption, against the
policy-independent Equation-2-based Approach-4 bound.
"""

from conftest import write_artifact

from repro.analysis import Approach, CRPDAnalyzer, analyze_task
from repro.cache import POLICY_NAMES, CacheConfig, CacheState
from repro.experiments.reporting import Table
from repro.program import SystemLayout
from repro.vm import Machine
from repro.workloads import build_edge_detection, build_mobile_robot


def _measure(policy: str):
    config = CacheConfig(
        num_sets=256, ways=4, line_size=16, miss_penalty=20, policy=policy
    )
    layout = SystemLayout(stride=0x1C00)
    ed = build_edge_detection()
    mr = build_mobile_robot()
    ed_layout = layout.place(ed.program)
    mr_layout = layout.place(mr.program)
    ed_art = analyze_task(ed_layout, ed.scenario_map(), config)
    mr_art = analyze_task(mr_layout, mr.scenario_map(), config)
    crpd = CRPDAnalyzer({"ed": ed_art, "mr": mr_art})
    bound = crpd.lines_reloaded("ed", "mr", Approach.COMBINED)

    # Run ED, preempt with MR at several points, count reloads of evicted
    # blocks; report the worst observed preemption.
    worst_measured = 0
    for preempt_step in (500, 2000, 5000, 9000, 14000):
        cache = CacheState(config)
        machine = Machine(layout=ed_layout, cache=cache)
        for array, values in ed.scenario("sobel").inputs.items():
            machine.write_array(array, values)
        steps = 0
        while not machine.halted and steps < preempt_step:
            machine.step()
            steps += 1
        if machine.halted:
            break
        resident = cache.resident_blocks() & ed_art.footprint
        intruder = Machine(layout=mr_layout, cache=cache)
        for array, values in mr.scenario("sweep").inputs.items():
            intruder.write_array(array, values)
        intruder.run()
        evicted = resident - cache.resident_blocks()
        reloaded: set[int] = set()
        while not machine.halted:
            before = cache.resident_blocks()
            machine.step()
            reloaded |= (cache.resident_blocks() - before) & evicted
        worst_measured = max(worst_measured, len(reloaded))
    return {
        "policy": policy,
        "ed_wcet": ed_art.wcet.cycles,
        "bound": bound,
        "measured": worst_measured,
    }


def test_policy_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(policy) for policy in POLICY_NAMES],
        rounds=1, iterations=1,
    )
    table = Table(
        title="Extension: replacement-policy sensitivity (ED preempted by MR)",
        headers=["policy", "ED WCET", "App.4 bound", "measured reloads"],
        notes=["Equation 2 bounds are policy-independent; RMB/LMB degrades "
               "to weak updates off-LRU"],
    )
    for row in rows:
        assert row["measured"] <= row["bound"], row
        table.add_row(row["policy"], row["ed_wcet"], row["bound"], row["measured"])
    write_artifact("ext_policies.txt", table.render())
