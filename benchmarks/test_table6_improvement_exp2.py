"""Bench: regenerate Table VI (Experiment II improvement percentages)."""

from conftest import write_artifact

from repro.experiments import MISS_PENALTIES, table_improvement


def test_table6(benchmark, suite2):
    for penalty in MISS_PENALTIES:
        suite2.context(penalty)
    table = benchmark(table_improvement, suite2)
    assert len(table.rows) == 6
    for row in table.rows:
        assert all(c >= 0.0 for c in row[2:]), row
    # Shape check: the App.4-vs-App.3 improvement for the lowest-priority
    # task reaches tens of percent at Cmiss=40, like the paper's headline
    # 38-56% WCRT reductions.
    adpcmc_vs_app3 = next(
        row
        for row in table.rows
        if row[0] == "App.4 vs App.3" and row[1] == "ADPCMC"
    )
    assert adpcmc_vs_app3[-1] > 20.0
    write_artifact("table6.txt", table.render())
