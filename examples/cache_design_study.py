#!/usr/bin/env python3
"""Cache design study: pick a geometry from trace diagnostics.

A systems engineer sizing the L1 for the Experiment I task set can answer
most questions from the traces alone, before running any scheduler:

1. the reuse-distance histogram predicts each task's LRU miss rate for
   any associativity (exactly, for LRU),
2. the set-pressure profile shows where intra-task conflict misses come
   from, and
3. the CRPD bounds show how the geometry trades isolated performance
   against preemption cost.

Run:  python examples/cache_design_study.py
"""

from repro.analysis import Approach, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig
from repro.program import SystemLayout
from repro.vm import merge_traces, reuse_profile, set_pressure
from repro.workloads import build_edge_detection, build_mobile_robot, build_ofdm

GEOMETRIES = [
    CacheConfig(num_sets=512, ways=1, line_size=16, miss_penalty=20),
    CacheConfig(num_sets=256, ways=2, line_size=16, miss_penalty=20),
    CacheConfig(num_sets=128, ways=4, line_size=16, miss_penalty=20),
    CacheConfig(num_sets=64, ways=8, line_size=16, miss_penalty=20),
]


def main():
    workloads = {
        "mr": build_mobile_robot(),
        "ed": build_edge_detection(),
        "ofdm": build_ofdm(),
    }

    print("1. per-task cache behaviour, predicted from one trace each")
    print(f"   (all geometries hold 8KB; columns are ways at that capacity)\n")
    header = f"   {'task':6s} {'accesses':>9s} " + " ".join(
        f"{c.ways}-way".rjust(7) for c in GEOMETRIES
    )
    print(header)
    traces = {}
    for name, workload in workloads.items():
        layout = SystemLayout().place(workload.program)
        art = analyze_task(layout, workload.scenario_map(), GEOMETRIES[1])
        merged = merge_traces(art.wcet.traces.values())
        traces[name] = merged
        rates = []
        for config in GEOMETRIES:
            profile = reuse_profile(merged, config)
            rates.append(f"{profile.predicted_miss_rate(config.ways):7.3f}")
        profile = reuse_profile(merged, GEOMETRIES[1])
        print(f"   {name:6s} {profile.accesses:>9d} " + " ".join(rates))

    print("\n2. set pressure (intra-task conflict potential), 2-way geometry")
    for name, merged in traces.items():
        pressure = set_pressure(merged, GEOMETRIES[1])
        over = pressure.overcommitted_sets()
        print(f"   {name:6s} sets used {pressure.sets_used:3d}/256, "
              f"max pressure {pressure.max_pressure}, "
              f"{len(over)} sets over 2-way capacity")

    print("\n3. preemption cost (App.4 CRPD bound for OFDM by MR) per geometry")
    for config in GEOMETRIES:
        layout = SystemLayout(stride=0x1C00)
        artifacts = {}
        for name in ("mr", "ed", "ofdm"):
            placed = layout.place(workloads[name].program)
            artifacts[name] = analyze_task(
                placed, workloads[name].scenario_map(), config
            )
        crpd = CRPDAnalyzer(artifacts)
        lines = crpd.lines_reloaded("ofdm", "mr", Approach.COMBINED)
        cycles = crpd.cpre("ofdm", "mr", Approach.COMBINED)
        print(f"   {config.num_sets:4d} sets x {config.ways}-way: "
              f"{lines:3d} lines = {cycles:5d} cycles per preemption")

    print("\ntakeaway: higher associativity at fixed capacity barely moves "
          "the isolated miss rates here (working sets are stream-like), but "
          "it shrinks the index span, concentrating the tasks onto the same "
          "sets — preemption cost is the quantity that reacts.")


if __name__ == "__main__":
    main()
