#!/usr/bin/env python3
"""Experiment II end-to-end: the paper's media pipeline (ADPCMC/ADPCMD/IDCT).

Rebuilds the paper's second task set — the MediaBench ADPCM coder and
decoder plus an MPEG-2-style IDCT — and walks through the analysis the
paper reports in Tables II/V/VI, including the Approach-1 WCRT blow-up at
high cache-miss penalties and the crossover cell where Lee's intra-task
analysis (Approach 3) beats the pure footprint intersection (Approach 2).

Run:  python examples/media_codec_system.py
"""

from repro.analysis import Approach
from repro.experiments import (
    EXPERIMENT_II_SPEC,
    ExperimentSuite,
    table2_cache_lines,
    table_improvement,
    table_wcrt,
)


def main():
    suite = ExperimentSuite(EXPERIMENT_II_SPEC)
    context = suite.context(20)

    print(context.spec.title)
    print(f"  utilisation: {context.system.utilization:.2f}")
    for name in context.priority_order:
        art = context.artifacts[name]
        spec = context.system.task(name)
        print(f"  {name.upper():7s} wcet={art.wcet.cycles:6d} "
              f"period={spec.period:7d} priority={spec.priority} "
              f"footprint={len(art.footprint):3d} "
              f"useful={len(art.useful.mumbs()):3d}")

    print()
    print(table2_cache_lines(context).render())

    # The crossover cell: ADPCMC preempted by ADPCMD.
    estimate = context.crpd.estimate_pair("adpcmc", "adpcmd")
    print(f"\ncrossover cell (paper Table II): {estimate.describe()}")
    if estimate.lines[Approach.LEE] < estimate.lines[Approach.INTERTASK]:
        print("  -> Lee's useful-block analysis beats the footprint "
              "intersection here; only the combined Approach 4 beats both.")

    print()
    print(table_wcrt(suite).render())
    print()
    print(table_improvement(suite).render())

    # The Approach-1 blow-up: cascading preemption windows at Cmiss=40.
    print("\nWCRT growth of ADPCMC with the cache-miss penalty:")
    for penalty in suite.penalties:
        app1 = suite.wcrt(penalty, Approach.BUSQUETS).wcrt("adpcmc")
        app4 = suite.wcrt(penalty, Approach.COMBINED).wcrt("adpcmc")
        art = suite.art(penalty)["adpcmc"]
        bar = "#" * min(80, app1 // 6000)
        print(f"  Cmiss={penalty:2d} App1={app1:7d} App4={app4:7d} "
              f"ART={art:7d} |{bar}")
    print("\nthe response-time recurrence amplifies CRPD differences: a "
          "larger per-preemption cost pushes the response past another "
          "release, adding a whole extra preemption window (the paper's "
          "Table V shape).")


if __name__ == "__main__":
    main()
