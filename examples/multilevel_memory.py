#!/usr/bin/env python3
"""Two-level memory hierarchy analysis — the paper's future work, built out.

Section IX of the paper: "we plan to expand our analysis approach for
systems with more than two-level memory hierarchy."  This example runs
Experiment I's task set on an L1(4KB) + L2(32KB) stack, computes the
per-level reload bounds with all four approaches, combines them into the
extended per-preemption cost (Eq. 5'), and shows what a naive L1-only
analysis would miss when memory sits far behind the L2.

Run:  python examples/multilevel_memory.py
"""

from repro.analysis import ALL_APPROACHES, Approach
from repro.analysis.multilevel import HierarchicalCRPD, analyze_task_hierarchy
from repro.cache import CacheConfig, HierarchyConfig, MemoryHierarchy
from repro.experiments import EXPERIMENT_I_SPEC
from repro.program import SystemLayout

HIERARCHY = HierarchyConfig(
    l1=CacheConfig(num_sets=64, ways=4, line_size=16, miss_penalty=8),
    l2=CacheConfig(num_sets=256, ways=4, line_size=32, miss_penalty=60),
)


def main():
    spec = EXPERIMENT_I_SPEC
    print(f"hierarchy: L1 {HIERARCHY.l1.size_bytes // 1024}KB "
          f"({HIERARCHY.l1.miss_penalty}-cycle refill from L2), "
          f"L2 {HIERARCHY.l2.size_bytes // 1024}KB "
          f"({HIERARCHY.l2.miss_penalty}-cycle refill from memory)\n")

    workloads = {name: build() for name, build in spec.builders.items()}
    layout = SystemLayout(stride=spec.stride)
    for name in spec.placement_order:
        layout.place(workloads[name].program)

    artifacts = {}
    for name in spec.priority_order:
        artifacts[name] = analyze_task_hierarchy(
            layout.layout_of(name), workloads[name].scenario_map(), HIERARCHY
        )
        art = artifacts[name]
        print(f"  {name.upper():5s} stack-WCET={art.wcet.cycles:6d}  "
              f"L1 footprint={len(art.l1.footprint):3d} blocks  "
              f"L2 footprint={len(art.l2.footprint):3d} blocks")

    crpd = HierarchicalCRPD(artifacts, mumbs_mode="paper")
    print("\nper-preemption reload bounds (L1 lines / L2 lines -> cycles):")
    order = list(spec.priority_order)
    for low_index in range(len(order) - 1, 0, -1):
        preempted = order[low_index]
        for preempting in order[:low_index]:
            print(f"  {preempted.upper()} by {preempting.upper()}:")
            for approach in ALL_APPROACHES:
                l1, l2 = crpd.lines_reloaded(preempted, preempting, approach)
                full = crpd.cpre(preempted, preempting, approach)
                naive = crpd.cpre_l1_only(preempted, preempting, approach)
                delta = full - naive
                print(f"    App.{approach.value}: {l1:3d}/{l2:3d} -> "
                      f"{full:5d} cycles  (L1-only would charge {naive}, "
                      f"missing {delta})")

    # Demonstrate the stack in action: ED's first run cold vs L2-warm.
    ed_layout = layout.layout_of("ed")
    from repro.vm import run_isolated

    stack = MemoryHierarchy(HIERARCHY)
    inputs = dict(workloads["ed"].scenario("sobel").inputs)
    cold = run_isolated(ed_layout, stack, inputs=inputs)
    stack.invalidate_l1()  # an L1-flushing preemption; L2 stays warm
    warm = run_isolated(ed_layout, stack, inputs=inputs)
    print(f"\nED cold-stack run: {cold.cycles} cycles; "
          f"after an L1-only flush (L2 warm): {warm.cycles} cycles")
    print("the L2 absorbs most of the reload cost — exactly the effect the "
          "two-level Cpre (Eq. 5') models.")


if __name__ == "__main__":
    main()
