#!/usr/bin/env python3
"""Experiment I end-to-end: the paper's mobile-robot system (OFDM/ED/MR).

Rebuilds the paper's first task set — a mobile-robot controller (MR), an
edge detector with a Sobel/Cauchy operator branch (ED) and an OFDM
transmitter — analyses every preemption pair with the four CRPD
approaches, runs the WCRT iteration across cache-miss penalties and
validates the estimates against the shared-cache scheduler simulation.

Run:  python examples/robot_vision_system.py
"""

from repro.analysis import ALL_APPROACHES, Approach
from repro.experiments import (
    EXPERIMENT_I_SPEC,
    ExperimentSuite,
    figure1_schedule,
    table2_cache_lines,
    table_improvement,
    table_wcrt,
)


def main():
    suite = ExperimentSuite(EXPERIMENT_I_SPEC)
    context = suite.context(20)

    print(context.spec.title)
    print(f"  cache: {context.config.size_bytes // 1024}KB, "
          f"{context.config.ways}-way, {context.config.line_size}B lines")
    print(f"  utilisation: {context.system.utilization:.2f}  "
          f"hyperperiod: {context.system.hyperperiod} cycles")
    for name in context.priority_order:
        art = context.artifacts[name]
        spec = context.system.task(name)
        print(f"  {name.upper():5s} wcet={art.wcet.cycles:6d} "
              f"period={spec.period:7d} priority={spec.priority} "
              f"footprint={len(art.footprint):3d} blocks "
              f"useful={len(art.useful.mumbs()):3d} "
              f"paths={len(art.path_profiles)}")

    print()
    print(table2_cache_lines(context).render())
    print()
    print(table_wcrt(suite).render())
    print()
    print(table_improvement(suite).render())

    # Soundness recap: ART below every estimate, at every penalty.
    print("\nsoundness (ART <= every WCRT estimate):")
    for penalty in suite.penalties:
        art = suite.art(penalty)
        for task in suite.preempted_tasks():
            bounds = [suite.wcrt(penalty, a).wcrt(task) for a in ALL_APPROACHES]
            ok = all(art[task] <= bound for bound in bounds)
            print(f"  Cmiss={penalty:2d} {task.upper():5s} "
                  f"ART={art[task]:7d} min-bound={min(bounds):7d} "
                  f"{'OK' if ok else 'VIOLATED'}")

    # Figure 1: the schedule of the first OFDM job.
    print()
    print(figure1_schedule(context).render())

    # The paper's headline, on our substrate.
    penalty = 40
    ofdm_app1 = suite.wcrt(penalty, Approach.BUSQUETS).wcrt("ofdm")
    ofdm_app4 = suite.wcrt(penalty, Approach.COMBINED).wcrt("ofdm")
    gain = (ofdm_app1 - ofdm_app4) / ofdm_app1 * 100
    print(f"\nheadline: at Cmiss={penalty}, Approach 4 tightens OFDM's WCRT "
          f"estimate by {gain:.0f}% vs Approach 1 "
          f"({ofdm_app1} -> {ofdm_app4} cycles)")


if __name__ == "__main__":
    main()
