#!/usr/bin/env python3
"""Schedulability exploration: how much CRPD precision buys admission.

The point of tighter WCRT analysis (paper Section I) is resource
utilisation: a pessimistic estimate rejects task sets that would actually
meet their deadlines.  This example shows two things on the Experiment II
task set:

1. the admission verdict at the baseline periods as the cache-miss
   penalty grows — pessimistic approaches start rejecting a system that
   demonstrably meets its deadlines on the simulator, and
2. a period sweep at a fixed penalty: the tightest ADPCMC period each
   approach admits.

Run:  python examples/schedulability_explorer.py
"""

from repro.analysis import ALL_APPROACHES, Approach
from repro.experiments import EXPERIMENT_II_SPEC, build_context
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt


def analysis_with_period(context, approach, adpcmc_period):
    """Re-run the Eq.7 analysis with a modified ADPCMC period."""
    tasks = [
        TaskSpec(
            name=task.name,
            wcet=task.wcet,
            period=adpcmc_period if task.name == "adpcmc" else task.period,
            priority=task.priority,
        )
        for task in context.system.tasks
    ]
    system = TaskSystem(tasks=tasks)
    return compute_system_wcrt(
        system,
        cpre=lambda low, high: context.crpd.cpre(low, high, approach),
        context_switch=context.spec.context_switch_cycles,
    )


def admission_at_baseline():
    print("1. admission of the baseline system vs cache-miss penalty")
    print("   (periods as in Table I; 'yes' = all deadlines proven)\n")
    header = f"   {'Cmiss':>5} | " + " | ".join(
        f"App.{a.value}" for a in ALL_APPROACHES
    ) + " | deadline misses in simulation"
    print(header)
    print("   " + "-" * (len(header) - 3))
    for penalty in (10, 20, 30, 40):
        context = build_context(EXPERIMENT_II_SPEC, miss_penalty=penalty)
        verdicts = []
        for approach in ALL_APPROACHES:
            wcrt = analysis_with_period(
                context, approach, context.spec.periods["adpcmc"]
            )
            verdicts.append(" yes " if wcrt.schedulable else "  NO ")
        misses = len(context.simulate().deadline_misses())
        print(f"   {penalty:>5} | " + " | ".join(verdicts) + f" | {misses}")
    print(
        "\n   at high miss penalties Approaches 1 and 3 reject a system the\n"
        "   simulator shows meeting every deadline; Approach 4 admits it.\n"
    )


def period_sweep(penalty=30):
    context = build_context(EXPERIMENT_II_SPEC, miss_penalty=penalty)
    base_period = context.spec.periods["adpcmc"]
    print(f"2. tightest admitted ADPCMC period (Cmiss={penalty})\n")
    tightest: dict[Approach, int | None] = {a: None for a in ALL_APPROACHES}
    for period in range(base_period, 150_000, -6_000):
        for approach in ALL_APPROACHES:
            if analysis_with_period(context, approach, period).schedulable:
                tightest[approach] = period
    for approach in ALL_APPROACHES:
        admitted = tightest[approach]
        text = str(admitted) if admitted else "none in sweep"
        print(f"   Approach {approach.value}: {text}")
    app1 = tightest[Approach.BUSQUETS]
    app4 = tightest[Approach.COMBINED]
    if app1 and app4 and app4 < app1:
        gain = (app1 - app4) / app1 * 100
        print(
            f"\n   Approach 4 admits a {gain:.0f}% shorter ADPCMC period than "
            f"Approach 1 —\n   the utilisation headroom the paper's analysis "
            f"recovers."
        )


def main():
    admission_at_baseline()
    period_sweep()


if __name__ == "__main__":
    main()
