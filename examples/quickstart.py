#!/usr/bin/env python3
"""Quickstart: CRPD-aware WCRT analysis of a two-task system, from scratch.

Builds two small tasks in the repro IR, runs the full analysis pipeline
(WCET by simulation, RMB/LMB useful blocks, CIIP inter-task analysis, path
analysis), compares the four CRPD estimation approaches from the paper and
closes the loop against the cycle-level preemptive scheduler.

Run:  python examples/quickstart.py
"""

from repro.analysis import ALL_APPROACHES, CRPDAnalyzer, analyze_task
from repro.cache import CacheConfig, CacheState
from repro.program import ProgramBuilder, SystemLayout
from repro.sched import Simulator, TaskBinding
from repro.wcrt import TaskSpec, TaskSystem, compute_system_wcrt


def build_sensor_task():
    """A small, frequent sensor-filter task (will be the preemptor)."""
    b = ProgramBuilder("sensor")
    samples = b.array("samples", words=32)
    filtered = b.array("filtered", words=32)
    b.const("acc", 0)
    with b.loop(32) as i:
        b.load("v", samples, index=i)
        b.binop("acc", "add", "acc", "v")
        b.binop("avg", "shr", "acc", 2)
        b.sub("hi", "v", "avg")
        b.unop("hi", "abs", "hi")
        b.store("hi", filtered, index=i)
    return b.build(), {"samples": [((i * 37) % 100) for i in range(32)]}


def build_logger_task():
    """A longer logging/compaction task (will be preempted)."""
    b = ProgramBuilder("logger")
    ring = b.array("ring", words=96)
    compact = b.array("compact", words=48)
    with b.loop(3):
        with b.loop(48) as i:
            b.mul("src", i, 2)
            b.load("a", ring, index="src")
            b.add("src", "src", 1)
            b.load("b", ring, index="src")
            b.add("sum", "a", "b")
            b.binop("sum", "shr", "sum", 1)
            b.store("sum", compact, index=i)
    return b.build(), {"ring": list(range(96))}


def main():
    # 1. A 4KB 4-way cache with a 20-cycle miss penalty.
    config = CacheConfig(num_sets=64, ways=4, line_size=16, miss_penalty=20)

    # 2. Place both tasks in one address space and analyse them.
    layout = SystemLayout()
    sensor_program, sensor_inputs = build_sensor_task()
    logger_program, logger_inputs = build_logger_task()
    logger_layout = layout.place(logger_program)
    sensor_layout = layout.place(sensor_program)

    sensor = analyze_task(sensor_layout, {"run": sensor_inputs}, config)
    logger = analyze_task(logger_layout, {"run": logger_inputs}, config)
    print("per-task analysis:")
    for art in (sensor, logger):
        print(f"  {art.name:8s} {art.summary()}")

    # 3. The four CRPD approaches for "logger preempted by sensor".
    crpd = CRPDAnalyzer({"sensor": sensor, "logger": logger})
    print("\ncache lines reloaded per preemption (logger by sensor):")
    for approach in ALL_APPROACHES:
        lines = crpd.lines_reloaded("logger", "sensor", approach)
        cycles = crpd.cpre("logger", "sensor", approach)
        print(f"  Approach {approach.value} ({approach.name:9s}): "
              f"{lines:3d} lines = {cycles} cycles")

    # 4. WCRT analysis (Equation 7) with the combined approach.
    # Round periods keep the hyperperiod (and the demo simulation) short.
    sensor_spec = TaskSpec(
        name="sensor", wcet=sensor.wcet.cycles, period=4_000, priority=1,
    )
    logger_spec = TaskSpec(
        name="logger", wcet=logger.wcet.cycles, period=32_000, priority=2,
    )
    system = TaskSystem(tasks=[sensor_spec, logger_spec])
    ccs = 150
    from repro.analysis import Approach

    wcrt = compute_system_wcrt(
        system,
        cpre=lambda low, high: crpd.cpre(low, high, Approach.COMBINED),
        context_switch=ccs,
    )
    print(f"\nWCRT (Eq.7, Approach 4): "
          f"sensor={wcrt.wcrt('sensor')} logger={wcrt.wcrt('logger')} "
          f"schedulable={wcrt.schedulable}")

    # 5. Close the loop: measure actual response times on the simulator.
    simulator = Simulator(
        [
            TaskBinding(sensor_spec, sensor_layout, sensor_inputs),
            TaskBinding(logger_spec, logger_layout, logger_inputs),
        ],
        cache=CacheState(config),
        context_switch_cycles=ccs,
    )
    result = simulator.run(horizon=2 * system.hyperperiod)
    art_logger = result.actual_response_time("logger")
    print(f"measured: logger ART={art_logger} "
          f"(preemptions={result.preemption_count('logger')}) "
          f"bound holds: {art_logger <= wcrt.wcrt('logger')}")


if __name__ == "__main__":
    main()
